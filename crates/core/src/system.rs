//! The assembled system: simulator + monitors + explicit control plane.
//!
//! This module is wiring. The decisions live in the control-plane
//! components it connects through the simulated timeline:
//!
//! - [`Nimbus`] owns the scheduler registry, the active algorithm, and
//!   heartbeat-derived liveness (generation/recovery decisions);
//! - the [`ScheduleStore`] carries epoch-stamped publications from the
//!   generator to Nimbus;
//! - per-node [`Supervisor`] state machines heartbeat to Nimbus and
//!   fetch/apply their node's slice of the cluster assignment on
//!   jittered, phase-staggered timers — a rollout is *not* atomic, and
//!   different nodes briefly run different assignment epochs.

use crate::config::{EstimatorKind, SystemMode, TStormConfig};
use crate::nimbus::{ControlStats, Nimbus, Reconciliation};
use crate::store::ScheduleStore;
use crate::supervisor::{HeartbeatOutcome, Supervisor};
use crate::timeline::ControlEvent;
use std::collections::{BTreeMap, BTreeSet};
use tstorm_cluster::{Assignment, ClusterSpec};
use tstorm_metrics::RunReport;
use tstorm_monitor::{HoltLinearEstimator, LoadMonitor, OverloadDetector, WindowSnapshot};
use tstorm_sched::{
    AssignmentQuality, ExecutorInfo, RoundRobinScheduler, SchedParams, ScheduleExplanation,
    Scheduler, SchedulerRegistry, SchedulingInput,
};
use tstorm_sim::{ExecutorLogic, SimCounters, Simulation, TopologyHandle};
use tstorm_topology::{ComponentSpec, Topology};
use tstorm_trace::json::{write_escaped, ObjectWriter};
use tstorm_trace::{FlightRecorder, Observer, TraceEvent};
use tstorm_types::{
    AssignmentId, ComponentId, ExecutorId, NodeId, Result, SimTime, TStormError, TopologyId,
};

/// A running T-Storm (or plain Storm) deployment over the simulator.
///
/// See the crate docs for the control-loop structure; construct with
/// [`TStormSystem::new`], add topologies with [`TStormSystem::submit`],
/// then [`TStormSystem::start`] and [`TStormSystem::run_until`].
pub struct TStormSystem {
    cluster: ClusterSpec,
    config: TStormConfig,
    sim: Simulation,
    monitor: LoadMonitor,
    detector: OverloadDetector,
    /// The cluster master: scheduler ownership + heartbeat liveness.
    nimbus: Nimbus,
    /// The schedule store between generator and Nimbus.
    store: ScheduleStore,
    /// One supervisor state machine per worker node.
    supervisors: Vec<Supervisor>,
    workers_requested: BTreeMap<TopologyId, u32>,
    component_edges: Vec<(TopologyId, ComponentId, ComponentId)>,
    next_monitor: SimTime,
    next_fetch: SimTime,
    next_generate: SimTime,
    started: bool,
    generations: u32,
    overload_events: u32,
    last_overload_generate: Option<SimTime>,
    last_recovery_generate: Option<SimTime>,
    recovery_events: u32,
    timeline: Vec<ControlEvent>,
    observer: Observer,
    /// Capture wall-clock scheduler runtime into trace events (off by
    /// default: wall time is nondeterministic and would break
    /// byte-identical traces; the metrics histogram gets it either way).
    trace_wall_time: bool,
    /// Whether schedulers record per-placement decisions.
    explain: bool,
    /// Every explanation captured this run: (store epoch, when,
    /// records). Epoch 0 marks schedules that bypassed the store (the
    /// initial assignment, plain-Storm rewrites).
    explanations: Vec<(u64, SimTime, ScheduleExplanation)>,
    /// The run flight recorder, when attached.
    recorder: Option<FlightRecorder<Box<dyn std::io::Write + Send>>>,
    /// Timeline events already streamed to the recorder as `control`
    /// lines.
    recorded_timeline: usize,
}

impl std::fmt::Debug for TStormSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TStormSystem")
            .field("mode", &self.config.mode)
            .field("now", &self.sim.now())
            .field("generations", &self.generations)
            .field("overload_events", &self.overload_events)
            .finish()
    }
}

impl TStormSystem {
    /// Creates a system over the given cluster.
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::InvalidConfig`] when the configuration is
    /// out of domain, or [`TStormError::UnknownScheduler`] when
    /// `config.scheduler` is not registered.
    pub fn new(cluster: ClusterSpec, config: TStormConfig) -> Result<Self> {
        config.validate()?;
        let registry = SchedulerRegistry::with_builtins();
        // Plain Storm installs its own default scheduler; recovery then
        // re-runs whatever is installed (which a hot swap may replace),
        // in either mode.
        let initial = match config.mode {
            SystemMode::StormDefault => "storm-default",
            SystemMode::TStorm => config.scheduler.as_str(),
        };
        let nimbus = Nimbus::new(registry, initial, cluster.num_nodes())?;
        let detector = OverloadDetector::new(
            config.overload_cpu_threshold,
            config.overload_failure_threshold,
        );
        let sim = Simulation::new(cluster.clone(), config.sim);
        let alpha = config.alpha;
        let monitor = match config.estimator {
            EstimatorKind::Ewma => LoadMonitor::new(alpha),
            EstimatorKind::HoltLinear { beta } => {
                LoadMonitor::with_estimator(Box::new(move || {
                    Box::new(HoltLinearEstimator::new(alpha, beta))
                }))
            }
        };
        let num_nodes = cluster.num_nodes();
        let supervisors = cluster
            .nodes()
            .iter()
            .map(|n| {
                Supervisor::new(
                    n.id,
                    num_nodes,
                    config.sim.seed,
                    config.heartbeat_period,
                    config.sim.reassign.supervisor_poll,
                    config.fetch_jitter,
                )
            })
            .collect();
        Ok(Self {
            monitor,
            detector,
            nimbus,
            store: ScheduleStore::new(),
            supervisors,
            workers_requested: BTreeMap::new(),
            component_edges: Vec::new(),
            next_monitor: config.monitor_period,
            next_fetch: config.fetch_period,
            next_generate: config.generation_period,
            started: false,
            generations: 0,
            overload_events: 0,
            last_overload_generate: None,
            last_recovery_generate: None,
            recovery_events: 0,
            timeline: Vec::new(),
            observer: Observer::disabled(),
            trace_wall_time: false,
            explain: false,
            explanations: Vec::new(),
            recorder: None,
            recorded_timeline: 0,
            cluster,
            config,
            sim,
        })
    }

    /// Attaches an observer to the whole system: the simulator's data
    /// plane, the load monitor, and the control plane all share its
    /// sinks and metrics registry.
    pub fn set_observer(&mut self, observer: Observer) {
        self.sim.set_observer(observer.clone());
        self.monitor.set_observer(observer.clone());
        self.observer = observer;
    }

    /// Enables wall-clock scheduler-runtime capture in
    /// [`TraceEvent::ScheduleGenerated`] events. Off by default because
    /// wall time varies run to run, breaking byte-identical traces; the
    /// `tstorm_schedule_runtime_us` histogram records it regardless.
    pub fn set_trace_wall_time(&mut self, on: bool) {
        self.trace_wall_time = on;
    }

    /// The observer attached to this system (disabled unless
    /// [`TStormSystem::set_observer`] was called).
    #[must_use]
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Enables span collection and critical-path analysis in the data
    /// plane (see [`Simulation::enable_spans`]).
    pub fn enable_spans(&mut self) {
        self.sim.enable_spans();
    }

    /// Sets the engine's observability-lane count for frame-parallel
    /// stepping (see [`Simulation::set_workers`]); 1 (the default) is
    /// the plain serial engine. Output is byte-identical either way.
    pub fn set_workers(&mut self, workers: u32) {
        self.sim.set_workers(workers);
    }

    /// The configured observability-lane count (1 = serial).
    #[must_use]
    pub fn workers(&self) -> u32 {
        self.sim.workers()
    }

    /// Turns scheduler decision recording on or off. When on, every
    /// schedule call — generation, initial assignment, rebalance,
    /// recovery — captures a [`ScheduleExplanation`] that is persisted
    /// through the store and retrievable via
    /// [`TStormSystem::explanations`].
    pub fn set_explain(&mut self, on: bool) {
        self.explain = on;
        self.nimbus.set_explain(on);
    }

    /// Every scheduler explanation captured so far, as (store epoch,
    /// virtual time, records). Epoch 0 marks schedules that bypassed
    /// the store (the initial assignment, plain-Storm rewrites).
    #[must_use]
    pub fn explanations(&self) -> &[(u64, SimTime, ScheduleExplanation)] {
        &self.explanations
    }

    /// Attaches a flight recorder. The caller writes the leading `meta`
    /// line (it owns run provenance); the system streams `window`,
    /// `decision` and `control` lines while running, and
    /// [`TStormSystem::finish_recording`] appends the final
    /// `critical_path` line.
    pub fn set_flight_recorder(
        &mut self,
        recorder: FlightRecorder<Box<dyn std::io::Write + Send>>,
    ) {
        self.recorder = Some(recorder);
    }

    /// Flushes pending control-plane lines, writes the closing
    /// `critical_path` line (when spans are enabled) and detaches the
    /// recorder, returning the total lines it wrote. `None` when no
    /// recorder was attached.
    pub fn finish_recording(&mut self) -> Option<u64> {
        self.flush_control_lines();
        let now = self.sim.now();
        let spans_json = self
            .sim
            .spans()
            .map(tstorm_trace::CriticalPathCollector::to_json);
        let lane_stats = self.sim.lane_stats();
        let workers = self.sim.workers();
        let mut recorder = self.recorder.take()?;
        if let Some(json) = spans_json {
            recorder.line("critical_path", now, |o| {
                o.raw("summary", &json);
            });
        }
        // Per-lane utilization of the frame-parallel observability
        // plane. The counters are pure functions of the seed (dispatch
        // content, never wall clock), but the line only exists when
        // lanes ran, so recordings are compared per worker count.
        if !lane_stats.is_empty() {
            use std::fmt::Write as _;
            let mut lanes = String::from("[");
            for (i, s) in lane_stats.iter().enumerate() {
                if i > 0 {
                    lanes.push(',');
                }
                let _ = write!(
                    lanes,
                    "{{\"frames\":{},\"events\":{},\"roots\":{},\"idle_frames\":{}}}",
                    s.frames, s.events, s.roots, s.idle_frames
                );
            }
            lanes.push(']');
            recorder.line("lanes", now, |o| {
                o.u64("workers", u64::from(workers)).raw("lanes", &lanes);
            });
        }
        let _ = recorder.flush();
        Some(recorder.lines_written())
    }

    /// Streams timeline events the recorder has not seen yet as
    /// `control` lines.
    fn flush_control_lines(&mut self) {
        let Some(recorder) = self.recorder.as_mut() else {
            return;
        };
        for event in &self.timeline[self.recorded_timeline..] {
            recorder.line("control", event.at(), |o| {
                o.str("event", control_event_kind(event))
                    .str("detail", &event.to_string());
            });
        }
        self.recorded_timeline = self.timeline.len();
    }

    /// Captures the active scheduler's decision records (when explain
    /// is on), stamps them with `epoch`, and streams them to the
    /// recorder. Returns a clone for the store.
    fn record_explanation(
        &mut self,
        epoch: u64,
        explanation: Option<ScheduleExplanation>,
    ) -> Option<ScheduleExplanation> {
        let explanation = explanation?;
        let at = self.sim.now();
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.line("decision", at, |o| {
                o.u64("epoch", epoch)
                    .str("algorithm", &explanation.algorithm)
                    .f64("objective", explanation.total_objective())
                    .raw("notes", &strings_json(&explanation.notes))
                    .raw("decisions", &decisions_json(&explanation));
            });
        }
        self.explanations.push((epoch, at, explanation.clone()));
        Some(explanation)
    }

    /// One `window` recorder line: per-executor load estimates, per-node
    /// CPU and NIC egress, the deepest input queues, the heaviest
    /// traffic pairs, and where Nimbus's liveness belief diverges from
    /// ground truth.
    fn record_window(&mut self, counters: &SimCounters) {
        const TOP_K: usize = 8;
        let at = self.sim.now();

        let mut loads: Vec<(ExecutorId, tstorm_types::Mhz)> =
            self.monitor.db().executor_loads().into_iter().collect();
        loads.sort_by_key(|(e, _)| *e);
        let mut executors = String::from("[");
        for (i, (exec, load)) in loads.iter().enumerate() {
            if i > 0 {
                executors.push(',');
            }
            let mut o = ObjectWriter::new();
            o.str("id", &exec.to_string()).f64("mhz", load.get());
            executors.push_str(&o.finish());
        }
        executors.push(']');

        let utilisations = self.node_utilisations();
        let mut nodes = String::from("[");
        for (i, node) in self.cluster.nodes().iter().enumerate() {
            if i > 0 {
                nodes.push(',');
            }
            let cpu = utilisations
                .iter()
                .find(|(n, _)| *n == node.id.index())
                .map_or(0.0, |(_, u)| *u);
            let mut o = ObjectWriter::new();
            o.str("id", &node.id.to_string())
                .f64("cpu", cpu)
                .u64("nic_tx_bytes", counters.node_tx_bytes(node.id));
            nodes.push_str(&o.finish());
        }
        nodes.push(']');

        let mut depths = self.sim.queue_depths();
        depths.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        depths.truncate(TOP_K);
        let mut queues = String::from("[");
        for (i, (exec, depth)) in depths.iter().enumerate() {
            if i > 0 {
                queues.push(',');
            }
            let mut o = ObjectWriter::new();
            o.str("id", &exec.to_string()).u64("depth", *depth as u64);
            queues.push_str(&o.finish());
        }
        queues.push(']');

        let mut heavy: Vec<(ExecutorId, ExecutorId, u64)> = counters.pair_tuples().collect();
        heavy.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        heavy.truncate(TOP_K);
        let mut pairs = String::from("[");
        for (i, (from, to, tuples)) in heavy.iter().enumerate() {
            if i > 0 {
                pairs.push(',');
            }
            let mut o = ObjectWriter::new();
            o.str("from", &from.to_string())
                .str("to", &to.to_string())
                .u64("tuples", *tuples);
            pairs.push_str(&o.finish());
        }
        pairs.push(']');

        // Nodes where Nimbus's heartbeat-derived belief contradicts the
        // simulator's ground truth, in either direction.
        let mut diverged = String::from("[");
        let mut any = false;
        for node in self.cluster.nodes() {
            let believed_dead = self.nimbus.is_declared_dead(node.id);
            let truly_live = self.sim.cluster().is_node_live(node.id);
            if believed_dead == truly_live {
                if any {
                    diverged.push(',');
                }
                any = true;
                let mut o = ObjectWriter::new();
                o.str("id", &node.id.to_string())
                    .str("belief", if believed_dead { "dead" } else { "alive" })
                    .str("truth", if truly_live { "alive" } else { "dead" });
                diverged.push_str(&o.finish());
            }
        }
        diverged.push(']');

        let queue_high_water = self.sim.queue_high_water() as u64;
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.line("window", at, |o| {
                o.raw("executors", &executors)
                    .raw("nodes", &nodes)
                    .raw("queues", &queues)
                    .u64("event_queue_high_water", queue_high_water)
                    .raw("top_pairs", &pairs)
                    .raw("belief_divergence", &diverged);
            });
        }
    }

    /// Submits a topology with its logic factory. Storm applications port
    /// unchanged: the same topology and factory run under either
    /// [`SystemMode`].
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::InvalidTopology`] if the topology fails
    /// re-validation.
    pub fn submit(
        &mut self,
        topology: &Topology,
        factory: &mut dyn FnMut(&ComponentSpec, u32) -> ExecutorLogic,
    ) -> Result<TopologyHandle> {
        topology.validate()?;
        let handle = self.sim.submit_topology(topology, factory);
        self.workers_requested
            .insert(handle.id, topology.num_workers());
        for edge in topology.edges() {
            self.component_edges.push((handle.id, edge.from, edge.to));
        }
        Ok(handle)
    }

    /// Computes and applies the initial assignment (epoch 0).
    ///
    /// Storm uses its default scheduler. T-Storm uses the modified
    /// default of Section IV-C — `N*_w = min(Nu, Nw)` workers, at most one
    /// slot per node per topology — because "the proposed traffic-aware
    /// scheduling algorithm cannot be applied initially since no runtime
    /// load information can be provided at that time".
    ///
    /// # Errors
    ///
    /// Propagates scheduler infeasibility.
    pub fn start(&mut self) -> Result<()> {
        if self.started {
            return Ok(());
        }
        let mut initial: Box<dyn Scheduler> = match self.config.mode {
            SystemMode::StormDefault => Box::new(RoundRobinScheduler::storm_default()),
            SystemMode::TStorm => Box::new(RoundRobinScheduler::tstorm_initial()),
        };
        initial.set_explain(self.explain);
        let input = self.scheduling_input();
        let assignment = initial.schedule(&input)?;
        self.record_explanation(0, initial.take_explanation());
        self.sim.apply_assignment(&assignment);
        self.started = true;
        Ok(())
    }

    /// Advances the system to the given virtual time, interleaving the
    /// data plane (simulation) with the control plane: monitor ticks,
    /// schedule generation, Nimbus's store fetches, and every
    /// supervisor's heartbeat/fetch timers.
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::InvalidConfig`] if called before
    /// [`TStormSystem::start`]; propagates scheduler errors.
    pub fn run_until(&mut self, until: SimTime) -> Result<()> {
        if !self.started {
            return Err(TStormError::invalid_config(
                "lifecycle",
                "run_until called before start()",
            ));
        }
        loop {
            let tstorm = self.config.mode == SystemMode::TStorm;
            let mut next = self.next_monitor;
            if tstorm {
                next = next.min(self.next_fetch).min(self.next_generate);
            }
            for sup in &self.supervisors {
                next = next.min(sup.next_event(tstorm));
            }
            if next > until {
                self.sim.run_until(until);
                self.flush_control_lines();
                return Ok(());
            }
            self.sim.run_until(next);
            let now = self.sim.now();
            if now >= self.next_monitor {
                self.monitor_tick()?;
                self.next_monitor += self.config.monitor_period;
            }
            if tstorm {
                if now >= self.next_generate {
                    self.generate(false)?;
                    self.next_generate += self.config.generation_period;
                }
                if now >= self.next_fetch {
                    self.nimbus_fetch();
                    self.next_fetch += self.config.fetch_period;
                }
            }
            self.supervisor_round(now)?;
            self.flush_control_lines();
        }
    }

    /// Drives every supervisor whose timer is due at `now`, in node
    /// order (deterministic). Heartbeats run in both modes — liveness is
    /// always heartbeat-derived — while store-driven fetch/apply only
    /// exists under T-Storm (plain Storm has no schedule store).
    fn supervisor_round(&mut self, now: SimTime) -> Result<()> {
        let fetch_enabled = self.config.mode == SystemMode::TStorm;
        for i in 0..self.supervisors.len() {
            let node = self.supervisors[i].node();
            let node_live = self.sim.cluster().is_node_live(node);
            let muted = self.sim.heartbeat_suppressed(node);
            match self.supervisors[i].poll_heartbeat(now, node_live, muted) {
                Some(HeartbeatOutcome::Sent { was_down }) => {
                    self.observer
                        .emit_with(now, || TraceEvent::HeartbeatSent { node: node.index() });
                    self.observer.metrics(|m| {
                        m.inc_counter(
                            "tstorm_heartbeats_sent_total",
                            "Supervisor heartbeats that reached Nimbus",
                            &[],
                            1,
                        );
                    });
                    if let Some(rec) = self.nimbus.record_heartbeat(node, now, was_down) {
                        self.note_reconciliation(now, rec);
                    }
                }
                Some(HeartbeatOutcome::Missed) => {
                    self.observer.metrics(|m| {
                        m.inc_counter(
                            "tstorm_heartbeats_missed_total",
                            "Supervisor heartbeat ticks that never reached Nimbus",
                            &[],
                            1,
                        );
                    });
                }
                None => {}
            }
            if fetch_enabled {
                let target = self.nimbus.cluster_epoch();
                if let Some(epoch) = self.supervisors[i].poll_fetch(now, node_live, target) {
                    self.observer
                        .emit_with(now, || TraceEvent::SupervisorFetch {
                            node: node.index(),
                            epoch,
                        });
                    let assignment = self
                        .nimbus
                        .cluster_assignment()
                        .expect("a non-zero epoch implies an installed assignment")
                        .assignment
                        .clone();
                    self.sim.apply_assignment_for_node(node, &assignment);
                    self.observer.emit_with(now, || TraceEvent::EpochApplied {
                        node: node.index(),
                        epoch,
                    });
                    self.observer.metrics(|m| {
                        m.inc_counter(
                            "tstorm_supervisor_fetches_total",
                            "Supervisor fetches that picked up a new assignment epoch",
                            &[],
                            1,
                        );
                        m.inc_counter(
                            "tstorm_epochs_applied_total",
                            "Assignment epochs applied across all supervisors",
                            &[],
                            1,
                        );
                    });
                }
            }
        }
        Ok(())
    }

    fn note_reconciliation(&mut self, now: SimTime, rec: Reconciliation) {
        self.timeline.push(ControlEvent::NodeReconciled {
            at: now,
            node: rec.node,
            false_positive: rec.false_positive,
        });
        self.observer.emit_with(now, || TraceEvent::NodeReconciled {
            node: rec.node.index(),
            false_positive: rec.false_positive,
        });
        if rec.false_positive {
            self.observer.metrics(|m| {
                m.inc_counter(
                    "tstorm_false_positive_reassignments_total",
                    "Healthy nodes reassigned away under a heartbeat-loss death declaration",
                    &[],
                    1,
                );
            });
        }
    }

    fn monitor_tick(&mut self) -> Result<()> {
        let counters = self.sim.drain_counters();
        let failures = counters.failures;
        let mut snap = WindowSnapshot::new(self.config.monitor_period);
        for (exec, cycles) in counters.executor_cycles() {
            snap.record_cpu(exec, cycles);
        }
        for (from, to, tuples) in counters.pair_tuples() {
            snap.record_traffic(from, to, tuples);
        }
        self.monitor.ingest(&snap);
        if self.recorder.is_some() {
            self.record_window(&counters);
        }
        if self.observer.is_enabled() {
            let utilisations = self.node_utilisations();
            self.observer.metrics(|m| {
                for (node, ratio) in &utilisations {
                    m.set_gauge(
                        "tstorm_node_cpu_utilisation",
                        "Estimated node CPU load as a fraction of capacity",
                        &[("node", &node.to_string())],
                        *ratio,
                    );
                }
            });
        }

        self.sweep_liveness()?;

        if self.config.mode == SystemMode::TStorm && self.config.overload_fast_path {
            let cooled_down = self
                .last_overload_generate
                .is_none_or(|t| self.sim.now() >= t + self.config.overload_cooldown);
            if cooled_down {
                let report = self.detector.inspect(
                    self.monitor.db(),
                    &self.cluster,
                    self.sim.current_assignment(),
                    failures,
                );
                if report.is_overloaded() {
                    self.overload_events += 1;
                    self.last_overload_generate = Some(self.sim.now());
                    self.timeline.push(ControlEvent::OverloadDetected {
                        at: self.sim.now(),
                        nodes: report.cpu_overloaded.clone(),
                        failures: report.recent_failures,
                    });
                    if self.observer.is_enabled() {
                        let at = self.sim.now();
                        let utilisations = self.node_utilisations();
                        for node in &report.cpu_overloaded {
                            let node = node.index();
                            let utilisation = utilisations
                                .iter()
                                .find(|(n, _)| *n == node)
                                .map_or(0.0, |(_, u)| *u);
                            self.observer
                                .emit_with(at, || TraceEvent::OverloadDetected {
                                    node,
                                    utilisation,
                                });
                        }
                        self.observer.metrics(|m| {
                            m.inc_counter(
                                "tstorm_overload_events_total",
                                "Overload detections that triggered the fast path",
                                &[],
                                1,
                            );
                        });
                    }
                    self.generate(true)?;
                }
            }
        }
        self.recover_lost_executors()?;
        Ok(())
    }

    /// Nimbus's liveness sweep: any node silent for the configured
    /// number of heartbeat periods is declared dead and a forced
    /// generation moves its executors to the surviving nodes. The
    /// declaration is new information, so it bypasses the recovery
    /// cooldown. A crashed Nimbus declares nothing — liveness freezes
    /// for the duration of the outage.
    fn sweep_liveness(&mut self) -> Result<()> {
        if self.sim.nimbus_down() {
            return Ok(());
        }
        let now = self.sim.now();
        let declared = self.nimbus.update_liveness(
            now,
            self.config.heartbeat_period,
            self.config.heartbeat_miss_threshold,
        );
        if declared.is_empty() {
            return Ok(());
        }
        for d in &declared {
            self.timeline.push(ControlEvent::NodeDeclaredDead {
                at: now,
                node: d.node,
                missed: d.missed,
            });
            self.observer
                .emit_with(now, || TraceEvent::NodeDeclaredDead {
                    node: d.node.index(),
                    missed: u64::from(d.missed),
                });
            self.observer.metrics(|m| {
                m.inc_counter(
                    "tstorm_nodes_declared_dead_total",
                    "Nodes Nimbus declared dead from heartbeat silence",
                    &[],
                    1,
                );
            });
        }
        self.last_recovery_generate = Some(now);
        match self.config.mode {
            SystemMode::TStorm => self.generate(true)?,
            SystemMode::StormDefault => self.storm_reschedule()?,
        }
        Ok(())
    }

    /// Crash recovery: executors whose worker died under a fault plan
    /// sit unassigned until the control plane re-places them. Nimbus
    /// notices at the next monitoring round and re-runs the *installed*
    /// scheduler — whatever a hot swap may have made current — against
    /// its believed-live cluster, rolling the result out through the
    /// store (T-Storm) or directly (plain Storm, which has no store).
    fn recover_lost_executors(&mut self) -> Result<()> {
        let unplaced = self.sim.unplaced_executors();
        if unplaced == 0 {
            return Ok(());
        }
        // A recovery rollout already in flight (published-but-unfetched,
        // or fetched but not yet applied by every reachable supervisor):
        // let it land before rescheduling again.
        if self.config.mode == SystemMode::TStorm && self.rollout_in_flight() {
            return Ok(());
        }
        // Space retries so one crash does not force a regeneration every
        // tick while workers start and the backlog drains.
        let cooled_down = self
            .last_recovery_generate
            .is_none_or(|t| self.sim.now() >= t + self.config.overload_cooldown);
        if !cooled_down {
            return Ok(());
        }
        if self.sim.nimbus_down() {
            self.timeline.push(ControlEvent::NimbusSuppressed {
                at: self.sim.now(),
                action: "recovery".to_owned(),
            });
            return Ok(());
        }
        self.recovery_events += 1;
        self.last_recovery_generate = Some(self.sim.now());
        self.timeline.push(ControlEvent::RecoveryTriggered {
            at: self.sim.now(),
            unplaced,
        });
        match self.config.mode {
            SystemMode::TStorm => self.generate(true)?,
            SystemMode::StormDefault => self.storm_reschedule()?,
        }
        Ok(())
    }

    /// Whether a published schedule has not yet reached every supervisor
    /// that can still apply it (nodes Nimbus believes dead, or that are
    /// genuinely down, are not waited for).
    fn rollout_in_flight(&self) -> bool {
        if self.store.has_unfetched() {
            return true;
        }
        let target = self.nimbus.cluster_epoch();
        self.supervisors.iter().any(|s| {
            s.applied_epoch() < target
                && !self.nimbus.is_declared_dead(s.node())
                && self.sim.cluster().is_node_live(s.node())
        })
    }

    /// Plain Storm's recovery path: re-run the installed scheduler and
    /// hand the result straight to the supervisors (no store, no
    /// epochs — Storm 0.8 rewrites cluster state atomically).
    fn storm_reschedule(&mut self) -> Result<()> {
        let input = self.scheduling_input();
        let assignment = self.nimbus.schedule(&input)?;
        let explanation = self.nimbus.take_explanation();
        if !self.sim.current_assignment().diff(&assignment).is_empty() {
            self.record_explanation(0, explanation);
            self.sim.submit_assignment(&assignment);
            self.prune_stale_estimates();
        }
        Ok(())
    }

    /// One schedule-generator round: read estimates, run the (swappable)
    /// algorithm, and publish the result to the store if it is a genuine
    /// improvement (or `force` is set, as during overload recovery).
    /// While Nimbus is down nothing is generated at all.
    fn generate(&mut self, force: bool) -> Result<()> {
        if self.sim.nimbus_down() {
            self.timeline.push(ControlEvent::NimbusSuppressed {
                at: self.sim.now(),
                action: "generation".to_owned(),
            });
            return Ok(());
        }
        if self.monitor.db().windows_ingested() == 0 {
            return Ok(()); // no runtime information yet
        }
        let input = self.scheduling_input();
        let sched_started = self.observer.is_enabled().then(std::time::Instant::now);
        let assignment = self.nimbus.schedule(&input)?;
        let explanation = self.nimbus.take_explanation();
        let elapsed_us = sched_started.map(|t| t.elapsed().as_micros() as u64);
        if let Some(us) = elapsed_us {
            self.observer.metrics(|m| {
                m.observe(
                    "tstorm_schedule_runtime_us",
                    "Wall-clock runtime of one scheduler invocation",
                    &[("algorithm", &self.nimbus.scheduler_name())],
                    us as f64,
                );
            });
        }
        if self.observer.is_enabled() {
            let quality = AssignmentQuality::evaluate(&assignment, &input);
            let at = self.sim.now();
            let algorithm = self.nimbus.scheduler_name();
            let wall = self.trace_wall_time.then_some(elapsed_us).flatten();
            self.observer
                .emit_with(at, || TraceEvent::ScheduleGenerated {
                    algorithm,
                    inter_node_traffic: quality.inter_node_traffic,
                    inter_process_traffic: quality.inter_process_traffic,
                    elapsed_us: wall,
                });
            self.observer.metrics(|m| {
                m.inc_counter(
                    "tstorm_schedules_generated_total",
                    "Scheduler invocations that produced a candidate schedule",
                    &[],
                    1,
                );
            });
        }
        // Publish only real changes; re-applying the current schedule
        // would needlessly restart workers.
        if self.sim.current_assignment().diff(&assignment).is_empty() {
            return Ok(());
        }
        if !force && !self.is_improvement(&assignment, &input) {
            self.timeline.push(ControlEvent::ScheduleSuppressed {
                at: self.sim.now(),
                reason: "inter-node traffic improvement below threshold".to_owned(),
            });
            return Ok(());
        }
        let id = AssignmentId::from_timestamp_micros(self.sim.now().as_micros());
        let quality = AssignmentQuality::evaluate(&assignment, &input);
        let epoch = self.store.latest_epoch() + 1;
        let explanation = self.record_explanation(epoch, explanation);
        let epoch = self.store.publish(
            id,
            assignment,
            self.sim.now(),
            self.nimbus.scheduler_name(),
            explanation,
        );
        self.nimbus.note_publish();
        self.timeline.push(ControlEvent::SchedulePublished {
            at: self.sim.now(),
            id,
            epoch,
            nodes_used: quality.nodes_used,
            inter_node_traffic: quality.inter_node_traffic,
        });
        self.generations += 1;
        Ok(())
    }

    /// Hysteresis: small estimate fluctuations flip the greedy's choices,
    /// and every published schedule costs a rollout (worker restarts,
    /// spout halt). A periodic schedule is published only when it cuts
    /// estimated inter-node traffic by the configured fraction, or frees
    /// worker nodes without increasing traffic.
    fn is_improvement(&self, candidate: &Assignment, input: &SchedulingInput) -> bool {
        let current = AssignmentQuality::evaluate(self.sim.current_assignment(), input);
        let new = AssignmentQuality::evaluate(candidate, input);
        let traffic_cut = current.inter_node_traffic
            - current.inter_node_traffic * self.config.improvement_threshold;
        if new.inter_node_traffic < traffic_cut {
            return true;
        }
        new.nodes_used < current.nodes_used && new.inter_node_traffic <= current.inter_node_traffic
    }

    /// One custom-scheduler round: Nimbus fetches the latest publication
    /// from the store — if there is news and Nimbus is up — and installs
    /// it as the cluster assignment for the supervisors to pick up.
    fn nimbus_fetch(&mut self) {
        if self.sim.nimbus_down() {
            return;
        }
        if let Some(fetched) = self.store.fetch() {
            self.nimbus.install(fetched.versioned.clone());
            self.timeline.push(ControlEvent::ScheduleFetched {
                at: self.sim.now(),
                id: fetched.id,
                epoch: fetched.versioned.epoch,
            });
            self.prune_stale_estimates();
        }
    }

    /// Drops estimates for executors the simulator no longer runs, so a
    /// reassignment cannot be steered by traffic pairs of retired
    /// executors.
    fn prune_stale_estimates(&mut self) {
        let alive: BTreeSet<ExecutorId> = self
            .sim
            .executor_descriptors()
            .into_iter()
            .map(|d| d.id)
            .collect();
        self.monitor.db_mut().retain_executors(&alive);
    }

    /// Estimated per-node CPU load as a fraction of capacity, from the
    /// EWMA database under the assignment currently in force (same
    /// aggregation as [`OverloadDetector::inspect`]).
    fn node_utilisations(&self) -> Vec<(u32, f64)> {
        let loads = self.monitor.db().executor_loads();
        let mut per_node: BTreeMap<u32, f64> = BTreeMap::new();
        for (exec, slot) in self.sim.current_assignment().iter() {
            if let Some(load) = loads.get(&exec) {
                let node = self.cluster.node_of(slot);
                *per_node.entry(node.index()).or_insert(0.0) +=
                    load.ratio(self.cluster.node(node).capacity);
            }
        }
        per_node.into_iter().collect()
    }

    fn scheduling_input(&self) -> SchedulingInput {
        let db = self.monitor.db();
        let executors: Vec<ExecutorInfo> = self
            .sim
            .executor_descriptors()
            .into_iter()
            .map(|d| ExecutorInfo::new(d.id, d.topology, d.component, db.load_of(d.id)))
            .collect();
        let mut params = SchedParams::default()
            .with_gamma(self.config.gamma)
            .with_capacity_fraction(self.config.capacity_fraction);
        for (topo, workers) in &self.workers_requested {
            params = params.with_workers(*topo, *workers);
        }
        // Liveness in the scheduler's view is Nimbus's *belief*, not
        // ground truth: a crashed node stays schedulable until its
        // heartbeat silence crosses the miss threshold, and a healthy
        // node under a (false) death declaration is excluded.
        let mut cluster = self.sim.cluster().clone();
        self.nimbus.apply_liveness_view(&mut cluster);
        SchedulingInput::new(cluster, executors, db.traffic_matrix(), params)
            .with_component_edges(self.component_edges.clone())
    }

    /// Storm's `rebalance` command: changes a topology's requested
    /// worker count and redistributes every topology with the
    /// mode-appropriate initial scheduler. T-Storm itself uses this to
    /// enforce `N*_w = min(Nu, Nw)` at submission (Section IV-C: "we use
    /// Storm's command rebalance to enforce this setting"); exposing it
    /// lets operators resize topologies at runtime. Under T-Storm the
    /// result is published through the store and rolls out node by node;
    /// plain Storm rewrites the assignment directly.
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::InvalidConfig`] for a zero worker count and
    /// propagates scheduler infeasibility.
    pub fn rebalance(&mut self, handle: &TopologyHandle, workers: u32) -> Result<()> {
        if workers == 0 {
            return Err(TStormError::invalid_config(
                "workers",
                "rebalance requires at least one worker",
            ));
        }
        self.workers_requested.insert(handle.id, workers);
        let mut initial: Box<dyn Scheduler> = match self.config.mode {
            SystemMode::StormDefault => Box::new(RoundRobinScheduler::storm_default()),
            SystemMode::TStorm => Box::new(RoundRobinScheduler::tstorm_initial()),
        };
        initial.set_explain(self.explain);
        let input = self.scheduling_input();
        let assignment = initial.schedule(&input)?;
        match self.config.mode {
            SystemMode::TStorm => {
                let id = AssignmentId::from_timestamp_micros(self.sim.now().as_micros());
                let epoch = self.store.latest_epoch() + 1;
                let explanation = self.record_explanation(epoch, initial.take_explanation());
                self.store
                    .publish(id, assignment, self.sim.now(), "rebalance", explanation);
                self.nimbus.note_publish();
            }
            SystemMode::StormDefault => {
                if !self.sim.current_assignment().diff(&assignment).is_empty() {
                    self.record_explanation(0, initial.take_explanation());
                    self.sim.submit_assignment(&assignment);
                }
            }
        }
        self.timeline.push(ControlEvent::Rebalanced {
            at: self.sim.now(),
            topology: handle.id,
            workers,
        });
        Ok(())
    }

    /// Kills a topology (Storm's `kill` command): its executors stop,
    /// its slots free up, its load/traffic estimates are forgotten, and
    /// subsequent schedule generations no longer place it.
    pub fn kill_topology(&mut self, handle: &TopologyHandle) {
        self.timeline.push(ControlEvent::TopologyKilled {
            at: self.sim.now(),
            topology: handle.id,
        });
        self.sim.kill_topology(handle.id);
        self.workers_requested.remove(&handle.id);
        self.component_edges.retain(|(t, _, _)| *t != handle.id);
        for exec in &handle.executors {
            self.monitor.db_mut().forget_executor(*exec);
        }
    }

    /// Replaces the scheduling algorithm at runtime — no restart, no
    /// resubmission (Section IV-C's hot-swapping). A schedule the old
    /// algorithm published but nobody fetched yet is discarded: the next
    /// fetch must never roll out the replaced algorithm's plan.
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::UnknownScheduler`] for unregistered names.
    pub fn swap_scheduler(&mut self, name: &str) -> Result<()> {
        self.nimbus.swap_scheduler(name)?;
        if let Some(dropped) = self.store.discard_unfetched() {
            self.timeline.push(ControlEvent::ScheduleDiscarded {
                at: self.sim.now(),
                id: dropped.id,
                epoch: dropped.versioned.epoch,
                reason: format!("algorithm hot-swapped to `{name}` before fetch"),
            });
        }
        self.timeline.push(ControlEvent::SchedulerSwapped {
            at: self.sim.now(),
            name: name.to_owned(),
        });
        self.observer
            .emit_with(self.sim.now(), || TraceEvent::SchedulerSwapped {
                to: name.to_owned(),
            });
        Ok(())
    }

    /// Registers an additional scheduler factory for hot-swapping.
    pub fn register_scheduler(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) {
        self.nimbus.register_scheduler(name, factory);
    }

    /// Adjusts the consolidation factor γ on the fly; the next generation
    /// round uses the new value.
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::InvalidConfig`] for non-positive γ.
    pub fn set_gamma(&mut self, gamma: f64) -> Result<()> {
        if gamma <= 0.0 || !gamma.is_finite() {
            return Err(TStormError::invalid_config("gamma", "must be positive"));
        }
        self.config.gamma = gamma;
        self.timeline.push(ControlEvent::GammaChanged {
            at: self.sim.now(),
            gamma,
        });
        self.observer
            .emit_with(self.sim.now(), || TraceEvent::GammaChanged { gamma });
        Ok(())
    }

    /// The current consolidation factor.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.config.gamma
    }

    /// The name of the scheduling algorithm currently installed.
    #[must_use]
    pub fn scheduler_name(&self) -> String {
        self.nimbus.scheduler_name()
    }

    /// Read access to the simulation (metrics, counters, time).
    #[must_use]
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access to the simulation (e.g. to inject assignments in
    /// tests).
    #[must_use]
    pub fn simulation_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// The monitoring subsystem.
    #[must_use]
    pub fn monitor(&self) -> &LoadMonitor {
        &self.monitor
    }

    /// Read access to Nimbus (liveness beliefs, installed scheduler).
    #[must_use]
    pub fn nimbus(&self) -> &Nimbus {
        &self.nimbus
    }

    /// Read access to the schedule store (epochs, fetch watermark).
    #[must_use]
    pub fn schedule_store(&self) -> &ScheduleStore {
        &self.store
    }

    /// Epoch of the most recent publication (0 = only the initial
    /// assignment exists).
    #[must_use]
    pub fn published_epoch(&self) -> u64 {
        self.store.latest_epoch()
    }

    /// The assignment epoch each node currently runs, in node order.
    /// During a rollout these disagree — that is the point.
    #[must_use]
    pub fn applied_epochs(&self) -> Vec<(NodeId, u64)> {
        self.supervisors
            .iter()
            .map(|s| (s.node(), s.applied_epoch()))
            .collect()
    }

    /// Aggregated control-plane counters (heartbeats, fetches, epochs,
    /// death declarations, false positives).
    #[must_use]
    pub fn control_stats(&self) -> ControlStats {
        let mut stats = self.nimbus.stats();
        for sup in &self.supervisors {
            stats.heartbeats_sent += sup.heartbeats_sent();
            stats.heartbeats_missed += sup.heartbeats_missed();
            stats.fetches += sup.fetches();
            stats.epochs_applied += sup.epochs_applied();
        }
        stats
    }

    /// Number of schedules the generator published.
    #[must_use]
    pub fn generations(&self) -> u32 {
        self.generations
    }

    /// Number of overload detections that triggered the fast path.
    #[must_use]
    pub fn overload_events(&self) -> u32 {
        self.overload_events
    }

    /// Number of crash recoveries the control plane triggered.
    #[must_use]
    pub fn recovery_events(&self) -> u32 {
        self.recovery_events
    }

    /// The metrics report of this run.
    #[must_use]
    pub fn report(&self, label: &str) -> RunReport {
        self.sim.report(label)
    }

    /// The control-plane decision timeline (see
    /// [`crate::timeline::render_timeline`]).
    #[must_use]
    pub fn timeline(&self) -> &[ControlEvent] {
        &self.timeline
    }
}

/// The snake_case discriminator a [`ControlEvent`] gets in `control`
/// recorder lines.
fn control_event_kind(event: &ControlEvent) -> &'static str {
    match event {
        ControlEvent::OverloadDetected { .. } => "overload_detected",
        ControlEvent::SchedulePublished { .. } => "schedule_published",
        ControlEvent::ScheduleSuppressed { .. } => "schedule_suppressed",
        ControlEvent::ScheduleFetched { .. } => "schedule_fetched",
        ControlEvent::ScheduleDiscarded { .. } => "schedule_discarded",
        ControlEvent::SchedulerSwapped { .. } => "scheduler_swapped",
        ControlEvent::GammaChanged { .. } => "gamma_changed",
        ControlEvent::TopologyKilled { .. } => "topology_killed",
        ControlEvent::RecoveryTriggered { .. } => "recovery_triggered",
        ControlEvent::Rebalanced { .. } => "rebalanced",
        ControlEvent::NodeDeclaredDead { .. } => "node_declared_dead",
        ControlEvent::NodeReconciled { .. } => "node_reconciled",
        ControlEvent::NimbusSuppressed { .. } => "nimbus_suppressed",
    }
}

/// A JSON array of strings.
fn strings_json(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, s);
    }
    out.push(']');
    out
}

/// A JSON array of one object per placement decision.
fn decisions_json(explanation: &ScheduleExplanation) -> String {
    let mut out = String::from("[");
    for (i, d) in explanation.decisions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut o = ObjectWriter::new();
        o.str("executor", &d.executor.to_string())
            .str("slot", &d.slot.to_string())
            .str("node", &d.node.to_string())
            .f64("load_mhz", d.load_mhz)
            .f64("traffic_total", d.traffic_total)
            .f64("objective_delta", d.objective_delta)
            .str("tie_break", &d.tie_break);
        if let Some(r) = &d.relaxation {
            o.str("relaxation", r);
        }
        out.push_str(&o.finish());
    }
    out.push(']');
    out
}
