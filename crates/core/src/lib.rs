//! The T-Storm system (Fig. 4 of the paper), assembled on top of the
//! Storm-model simulator.
//!
//! Scheduling in T-Storm works exactly as Section IV-A describes:
//!
//! 1. **load monitors** periodically (every 20 s) collect per-executor
//!    workload and inter-executor traffic at runtime and store
//!    EWMA-smoothed estimates in a database ([`tstorm_monitor`]);
//! 2. the **schedule generator** periodically (every 300 s) reads the
//!    estimates and computes a schedule with a traffic-aware online
//!    algorithm ([`tstorm_sched::TStormScheduler`], hot-swappable);
//! 3. the **custom scheduler** periodically (every 10 s) fetches the
//!    latest schedule and applies it by updating the executor-to-slot
//!    assignment in Nimbus; supervisors roll it out with the smooth
//!    re-assignment protocol of Section IV-D.
//!
//! The control plane is explicit: the generator publishes epoch-stamped
//! schedules into a [`ScheduleStore`]; [`Nimbus`] fetches them, owns the
//! scheduler registry, and derives node liveness purely from supervisor
//! heartbeats; per-node [`Supervisor`] state machines heartbeat and
//! fetch/apply their node's slice on jittered, phase-staggered timers —
//! so a rollout lands node by node and different nodes briefly run
//! different assignment epochs, as in a real Storm cluster.
//!
//! [`TStormSystem`] wires those components over a
//! [`tstorm_sim::Simulation`]; [`SystemMode`] selects between plain Storm
//! (default scheduler, no monitoring, disruptive re-assignment) and
//! T-Storm — the comparison every figure of Section V draws.
//!
//! # Example
//!
//! ```
//! use tstorm_cluster::ClusterSpec;
//! use tstorm_core::{SystemMode, TStormConfig, TStormSystem};
//! use tstorm_sim::{ConstSpout, ExecutorLogic, IdentityBolt};
//! use tstorm_topology::{Grouping, TopologyBuilder};
//! use tstorm_types::{Mhz, SimTime};
//!
//! let cluster = ClusterSpec::homogeneous(4, 4, Mhz::new(8000.0))?;
//! let topo = TopologyBuilder::new("mini")
//!     .spout("src", 2, &["v"])
//!     .bolt("sink", 2, &["v"], &[("src", Grouping::Shuffle)])
//!     .num_ackers(1)
//!     .num_workers(4)
//!     .build()?;
//! let config = TStormConfig::default().with_mode(SystemMode::TStorm).with_gamma(2.0);
//! let mut system = TStormSystem::new(cluster, config)?;
//! system.submit(&topo, &mut |spec, _| match spec.kind() {
//!     tstorm_topology::ComponentKind::Spout => ExecutorLogic::spout(ConstSpout::new("x")),
//!     _ => ExecutorLogic::bolt(IdentityBolt::new()),
//! })?;
//! system.start()?;
//! system.run_until(SimTime::from_secs(60))?;
//! assert!(system.simulation().completed() > 0);
//! # Ok::<(), tstorm_types::TStormError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod nimbus;
pub mod store;
pub mod supervisor;
pub mod system;
pub mod timeline;

pub use config::{EstimatorKind, SystemMode, TStormConfig};
pub use nimbus::{ControlStats, Nimbus};
pub use store::{ScheduleStore, StoredSchedule};
pub use supervisor::{HeartbeatOutcome, Supervisor};
pub use system::TStormSystem;
pub use timeline::{render_timeline, ControlEvent};
