//! System configuration — Table II of the paper, plus mode selection.

use serde::{Deserialize, Serialize};
use tstorm_sim::{ReassignMode, SimConfig};
use tstorm_types::{Result, SimTime, TStormError};

/// Which load estimator the monitors use (Section IV-B's extension
/// point: "other machine learning based estimation/prediction methods
/// can be easily integrated").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// The paper's EWMA, `Y ← αY + (1 − α)·Sample`.
    Ewma,
    /// Holt's linear (double exponential) smoothing with trend inertia
    /// `beta` — anticipates load ramps instead of lagging them.
    HoltLinear {
        /// Trend smoothing coefficient in `[0, 1]`.
        beta: f64,
    },
}

/// Which system the run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemMode {
    /// Plain Storm 0.8.2: the default round-robin scheduler runs once at
    /// submission, there is no load monitoring, and re-assignments (if
    /// ever submitted externally) kill and restart workers.
    StormDefault,
    /// T-Storm: modified initial assignment, load monitoring, periodic
    /// traffic-aware re-scheduling, overload fast path, and the smooth
    /// re-assignment protocol.
    TStorm,
}

/// Full configuration of a system run. Defaults reproduce Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TStormConfig {
    /// System under test.
    pub mode: SystemMode,
    /// Estimation coefficient α (Table II: 0.5).
    pub alpha: f64,
    /// Load estimator family (default: the paper's EWMA).
    pub estimator: EstimatorKind,
    /// Load monitoring and estimation period (Table II: 20 s).
    pub monitor_period: SimTime,
    /// Schedule fetching period of the custom scheduler (Table II: 10 s).
    pub fetch_period: SimTime,
    /// Schedule generation period (Table II: 300 s).
    pub generation_period: SimTime,
    /// Consolidation factor γ (Section IV-C).
    pub gamma: f64,
    /// Fraction of node capacity the scheduler may fill (Section IV-C
    /// suggests a fraction below 1 to "prevent overloading from happening
    /// with high probability").
    pub capacity_fraction: f64,
    /// Name of the scheduling algorithm the generator starts with
    /// (resolved through the hot-swap registry).
    pub scheduler: String,
    /// Node CPU threshold for overload detection.
    pub overload_cpu_threshold: f64,
    /// Minimum tuple failures per monitoring window to raise overload.
    pub overload_failure_threshold: u64,
    /// Whether overload triggers an immediate schedule generation instead
    /// of waiting for the next 300 s boundary.
    pub overload_fast_path: bool,
    /// Publish hysteresis: a periodically generated schedule is only
    /// published when it reduces estimated inter-node traffic by at least
    /// this fraction (or frees nodes without hurting traffic). Prevents
    /// re-assignment churn from small estimate fluctuations; overload
    /// recovery bypasses it.
    pub improvement_threshold: f64,
    /// Minimum gap between overload-triggered generations. While a
    /// recovery assignment rolls out and the backlog drains, tuples keep
    /// timing out; without a cooldown the fast path would regenerate (and
    /// restart the rollout) on every monitoring window.
    pub overload_cooldown: SimTime,
    /// Interval at which each node's supervisor heartbeats to Nimbus.
    /// Liveness is heartbeat-derived: Nimbus never observes node health
    /// directly, only this stream.
    pub heartbeat_period: SimTime,
    /// Consecutive heartbeat periods a node may go silent before Nimbus
    /// declares it dead and excludes it from scheduling.
    pub heartbeat_miss_threshold: u32,
    /// Per-node jitter fraction applied to every supervisor fetch (and
    /// heartbeat) interval, in `[0, 1)`. Non-zero jitter staggers the
    /// nodes so a rollout is applied node by node rather than in one
    /// synchronized step — different nodes briefly run different
    /// assignment epochs, as in real Storm.
    pub fetch_jitter: f64,
    /// Underlying simulator configuration.
    pub sim: SimConfig,
}

impl Default for TStormConfig {
    fn default() -> Self {
        Self {
            mode: SystemMode::TStorm,
            alpha: 0.5,
            estimator: EstimatorKind::Ewma,
            monitor_period: SimTime::from_secs(20),
            fetch_period: SimTime::from_secs(10),
            generation_period: SimTime::from_secs(300),
            gamma: 1.0,
            capacity_fraction: 0.9,
            scheduler: "t-storm".to_owned(),
            overload_cpu_threshold: 0.95,
            overload_failure_threshold: 1,
            overload_fast_path: true,
            improvement_threshold: 0.1,
            overload_cooldown: SimTime::from_secs(60),
            heartbeat_period: SimTime::from_secs(5),
            heartbeat_miss_threshold: 3,
            fetch_jitter: 0.2,
            sim: SimConfig::default(),
        }
    }
}

impl TStormConfig {
    /// Builder-style mode selection. Selecting
    /// [`SystemMode::StormDefault`] also switches the simulator to
    /// Storm's disruptive re-assignment semantics.
    #[must_use]
    pub fn with_mode(mut self, mode: SystemMode) -> Self {
        self.mode = mode;
        self.sim.reassign.mode = match mode {
            SystemMode::StormDefault => ReassignMode::Immediate,
            SystemMode::TStorm => ReassignMode::Smooth,
        };
        self
    }

    /// Builder-style γ override.
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Builder-style scheduler-name override.
    #[must_use]
    pub fn with_scheduler(mut self, name: impl Into<String>) -> Self {
        self.scheduler = name.into();
        self
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`TStormError::InvalidConfig`] for out-of-domain values.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(TStormError::invalid_config(
                "alpha",
                "must be within [0, 1]",
            ));
        }
        if let EstimatorKind::HoltLinear { beta } = self.estimator {
            if !(0.0..=1.0).contains(&beta) {
                return Err(TStormError::invalid_config(
                    "estimator.beta",
                    "must be within [0, 1]",
                ));
            }
        }
        if self.gamma <= 0.0 || !self.gamma.is_finite() {
            return Err(TStormError::invalid_config("gamma", "must be positive"));
        }
        if !(0.0..1.0).contains(&self.improvement_threshold) {
            return Err(TStormError::invalid_config(
                "improvement_threshold",
                "must be within [0, 1)",
            ));
        }
        if self.capacity_fraction <= 0.0 || self.capacity_fraction > 1.0 {
            return Err(TStormError::invalid_config(
                "capacity_fraction",
                "must be within (0, 1]",
            ));
        }
        if self.monitor_period == SimTime::ZERO
            || self.fetch_period == SimTime::ZERO
            || self.generation_period == SimTime::ZERO
        {
            return Err(TStormError::invalid_config(
                "periods",
                "monitor/fetch/generation periods must be non-zero",
            ));
        }
        if self.heartbeat_period == SimTime::ZERO {
            return Err(TStormError::invalid_config(
                "heartbeat_period",
                "must be non-zero",
            ));
        }
        if self.heartbeat_miss_threshold == 0 {
            return Err(TStormError::invalid_config(
                "heartbeat_miss_threshold",
                "must be at least 1",
            ));
        }
        if !(0.0..1.0).contains(&self.fetch_jitter) {
            return Err(TStormError::invalid_config(
                "fetch_jitter",
                "must be within [0, 1)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_ii() {
        let c = TStormConfig::default();
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.monitor_period, SimTime::from_secs(20));
        assert_eq!(c.fetch_period, SimTime::from_secs(10));
        assert_eq!(c.generation_period, SimTime::from_secs(300));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn storm_mode_uses_immediate_reassignment() {
        let c = TStormConfig::default().with_mode(SystemMode::StormDefault);
        assert_eq!(c.sim.reassign.mode, ReassignMode::Immediate);
        let c2 = c.with_mode(SystemMode::TStorm);
        assert_eq!(c2.sim.reassign.mode, ReassignMode::Smooth);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(TStormConfig::default().with_gamma(0.0).validate().is_err());
        let c = TStormConfig {
            alpha: 1.5,
            ..TStormConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TStormConfig {
            capacity_fraction: 0.0,
            ..TStormConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TStormConfig {
            monitor_period: SimTime::ZERO,
            ..TStormConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TStormConfig {
            heartbeat_period: SimTime::ZERO,
            ..TStormConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TStormConfig {
            heartbeat_miss_threshold: 0,
            ..TStormConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TStormConfig {
            fetch_jitter: 1.0,
            ..TStormConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn estimator_beta_is_validated() {
        let mut c = TStormConfig {
            estimator: EstimatorKind::HoltLinear { beta: 0.4 },
            ..TStormConfig::default()
        };
        assert!(c.validate().is_ok());
        c.estimator = EstimatorKind::HoltLinear { beta: 1.5 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let c = TStormConfig::default()
            .with_gamma(1.7)
            .with_seed(9)
            .with_scheduler("aniello-online");
        assert_eq!(c.gamma, 1.7);
        assert_eq!(c.sim.seed, 9);
        assert_eq!(c.scheduler, "aniello-online");
    }
}
