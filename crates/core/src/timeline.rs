//! A structured log of control-plane decisions.
//!
//! Operating T-Storm means understanding *why* the scheduler did (or did
//! not) act: every generation, publication, suppression, fetch, overload
//! detection, hot swap and parameter change is recorded here with its
//! virtual timestamp. The examples and the CLI render it; tests assert
//! on it.

use serde::{Deserialize, Serialize};
use std::fmt;
use tstorm_types::{AssignmentId, NodeId, SimTime, TopologyId};

/// One control-plane decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlEvent {
    /// The overload detector fired (CPU-saturated nodes and/or failures).
    OverloadDetected {
        /// When.
        at: SimTime,
        /// CPU-saturated nodes.
        nodes: Vec<NodeId>,
        /// Tuple failures in the inspected window.
        failures: u64,
    },
    /// The generator published a new schedule to the store.
    SchedulePublished {
        /// When.
        at: SimTime,
        /// The schedule's id (its timestamp).
        id: AssignmentId,
        /// The store epoch the schedule was published under.
        epoch: u64,
        /// Worker nodes the schedule uses.
        nodes_used: usize,
        /// Estimated inter-node traffic of the schedule (tuples/s).
        inter_node_traffic: f64,
    },
    /// The generator computed a schedule but hysteresis suppressed it.
    ScheduleSuppressed {
        /// When.
        at: SimTime,
        /// Why it was not published.
        reason: String,
    },
    /// The custom scheduler fetched a published schedule into Nimbus.
    ScheduleFetched {
        /// When.
        at: SimTime,
        /// Which schedule.
        id: AssignmentId,
        /// Its store epoch, now visible to the supervisors.
        epoch: u64,
    },
    /// A published-but-unfetched schedule was dropped from the store
    /// (e.g. its algorithm was hot-swapped out before any fetch).
    ScheduleDiscarded {
        /// When.
        at: SimTime,
        /// The discarded schedule.
        id: AssignmentId,
        /// Its (now dead) store epoch.
        epoch: u64,
        /// Why it was discarded.
        reason: String,
    },
    /// The scheduling algorithm was hot-swapped.
    SchedulerSwapped {
        /// When.
        at: SimTime,
        /// The new algorithm's name.
        name: String,
    },
    /// The consolidation factor γ was adjusted on the fly.
    GammaChanged {
        /// When.
        at: SimTime,
        /// The new value.
        gamma: f64,
    },
    /// A topology was killed.
    TopologyKilled {
        /// When.
        at: SimTime,
        /// Which topology.
        topology: TopologyId,
    },
    /// Nimbus noticed executors orphaned by a worker/node crash and
    /// re-invoked the active scheduler to re-place them.
    RecoveryTriggered {
        /// When.
        at: SimTime,
        /// Executors found without a live worker.
        unplaced: usize,
    },
    /// Storm's `rebalance` command: the topology's worker count changed
    /// and it was redistributed.
    Rebalanced {
        /// When.
        at: SimTime,
        /// Which topology.
        topology: TopologyId,
        /// The new requested worker count.
        workers: u32,
    },
    /// Nimbus missed enough consecutive heartbeats to declare a node
    /// dead; the node is excluded from scheduling until reconciled.
    NodeDeclaredDead {
        /// When.
        at: SimTime,
        /// The node declared dead.
        node: NodeId,
        /// Heartbeat periods missed at declaration time.
        missed: u32,
    },
    /// A declared-dead node's heartbeats resumed and Nimbus took it
    /// back into the schedulable set.
    NodeReconciled {
        /// When.
        at: SimTime,
        /// The reconciled node.
        node: NodeId,
        /// True when the node had never actually failed: the death
        /// declaration (and any reassignment made under it) was a
        /// heartbeat-loss false positive.
        false_positive: bool,
    },
    /// A control-plane action was skipped because Nimbus itself was
    /// down (a `nimbus-crash` fault window).
    NimbusSuppressed {
        /// When.
        at: SimTime,
        /// The action that did not happen (`generation`, `recovery`, ...).
        action: String,
    },
}

impl ControlEvent {
    /// The event's timestamp.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            ControlEvent::OverloadDetected { at, .. }
            | ControlEvent::SchedulePublished { at, .. }
            | ControlEvent::ScheduleSuppressed { at, .. }
            | ControlEvent::ScheduleFetched { at, .. }
            | ControlEvent::ScheduleDiscarded { at, .. }
            | ControlEvent::SchedulerSwapped { at, .. }
            | ControlEvent::GammaChanged { at, .. }
            | ControlEvent::TopologyKilled { at, .. }
            | ControlEvent::RecoveryTriggered { at, .. }
            | ControlEvent::Rebalanced { at, .. }
            | ControlEvent::NodeDeclaredDead { at, .. }
            | ControlEvent::NodeReconciled { at, .. }
            | ControlEvent::NimbusSuppressed { at, .. } => *at,
        }
    }
}

impl fmt::Display for ControlEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlEvent::OverloadDetected {
                at,
                nodes,
                failures,
            } => write!(
                f,
                "[{:>6}s] overload detected: {} saturated node(s), {failures} failure(s)",
                at.as_secs(),
                nodes.len()
            ),
            ControlEvent::SchedulePublished {
                at,
                id,
                epoch,
                nodes_used,
                inter_node_traffic,
            } => write!(
                f,
                "[{:>6}s] schedule {id} published as epoch {epoch}: {nodes_used} node(s), \
                 {inter_node_traffic:.1} tuples/s inter-node",
                at.as_secs()
            ),
            ControlEvent::ScheduleSuppressed { at, reason } => {
                write!(f, "[{:>6}s] schedule suppressed: {reason}", at.as_secs())
            }
            ControlEvent::ScheduleFetched { at, id, epoch } => {
                write!(
                    f,
                    "[{:>6}s] schedule {id} (epoch {epoch}) fetched into Nimbus",
                    at.as_secs()
                )
            }
            ControlEvent::ScheduleDiscarded {
                at,
                id,
                epoch,
                reason,
            } => write!(
                f,
                "[{:>6}s] schedule {id} (epoch {epoch}) discarded unfetched: {reason}",
                at.as_secs()
            ),
            ControlEvent::SchedulerSwapped { at, name } => {
                write!(
                    f,
                    "[{:>6}s] scheduler hot-swapped to `{name}`",
                    at.as_secs()
                )
            }
            ControlEvent::GammaChanged { at, gamma } => {
                write!(f, "[{:>6}s] gamma set to {gamma}", at.as_secs())
            }
            ControlEvent::TopologyKilled { at, topology } => {
                write!(f, "[{:>6}s] {topology} killed", at.as_secs())
            }
            ControlEvent::RecoveryTriggered { at, unplaced } => write!(
                f,
                "[{:>6}s] recovery: {unplaced} orphaned executor(s), re-running scheduler",
                at.as_secs()
            ),
            ControlEvent::Rebalanced {
                at,
                topology,
                workers,
            } => write!(
                f,
                "[{:>6}s] {topology} rebalanced to {workers} worker(s)",
                at.as_secs()
            ),
            ControlEvent::NodeDeclaredDead { at, node, missed } => write!(
                f,
                "[{:>6}s] {node} declared dead after {missed} missed heartbeat(s)",
                at.as_secs()
            ),
            ControlEvent::NodeReconciled {
                at,
                node,
                false_positive,
            } => write!(
                f,
                "[{:>6}s] {node} reconciled: heartbeats resumed{}",
                at.as_secs(),
                if *false_positive {
                    " (false-positive death declaration)"
                } else {
                    ""
                }
            ),
            ControlEvent::NimbusSuppressed { at, action } => {
                write!(f, "[{:>6}s] {action} skipped: Nimbus is down", at.as_secs())
            }
        }
    }
}

/// Renders a timeline as one line per event.
#[must_use]
pub fn render_timeline(events: &[ControlEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_timestamps() {
        let e = ControlEvent::GammaChanged {
            at: SimTime::from_secs(42),
            gamma: 1.7,
        };
        assert_eq!(e.at(), SimTime::from_secs(42));
    }

    #[test]
    fn display_is_one_line_each() {
        let events = vec![
            ControlEvent::OverloadDetected {
                at: SimTime::from_secs(100),
                nodes: vec![NodeId::new(0)],
                failures: 7,
            },
            ControlEvent::SchedulePublished {
                at: SimTime::from_secs(100),
                id: AssignmentId::from_timestamp_micros(100_000_000),
                epoch: 1,
                nodes_used: 5,
                inter_node_traffic: 123.4,
            },
            ControlEvent::ScheduleSuppressed {
                at: SimTime::from_secs(300),
                reason: "improvement below threshold".to_owned(),
            },
            ControlEvent::ScheduleFetched {
                at: SimTime::from_secs(110),
                id: AssignmentId::from_timestamp_micros(100_000_000),
                epoch: 1,
            },
            ControlEvent::ScheduleDiscarded {
                at: SimTime::from_secs(115),
                id: AssignmentId::from_timestamp_micros(100_000_000),
                epoch: 1,
                reason: "scheduler swapped".to_owned(),
            },
            ControlEvent::SchedulerSwapped {
                at: SimTime::from_secs(150),
                name: "t-storm-ls".to_owned(),
            },
            ControlEvent::TopologyKilled {
                at: SimTime::from_secs(400),
                topology: TopologyId::new(1),
            },
            ControlEvent::RecoveryTriggered {
                at: SimTime::from_secs(410),
                unplaced: 4,
            },
            ControlEvent::NodeDeclaredDead {
                at: SimTime::from_secs(420),
                node: NodeId::new(3),
                missed: 3,
            },
            ControlEvent::NodeReconciled {
                at: SimTime::from_secs(450),
                node: NodeId::new(3),
                false_positive: true,
            },
            ControlEvent::NimbusSuppressed {
                at: SimTime::from_secs(460),
                action: "generation".to_owned(),
            },
        ];
        let text = render_timeline(&events);
        assert_eq!(text.lines().count(), events.len());
        assert!(text.contains("overload detected"));
        assert!(text.contains("suppressed"));
        assert!(text.contains("t-storm-ls"));
        assert!(text.contains("4 orphaned executor(s)"));
        assert!(text.contains("epoch 1"));
        assert!(text.contains("discarded unfetched"));
        assert!(text.contains("declared dead after 3 missed heartbeat(s)"));
        assert!(text.contains("false-positive"));
        assert!(text.contains("Nimbus is down"));
    }
}
