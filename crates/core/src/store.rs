//! The versioned schedule store — the paper's shared DB (Fig. 3)
//! between the schedule generator and the custom scheduler in Nimbus.
//!
//! The generator *publishes* schedules here; Nimbus *fetches* them on
//! its own period. Every publication is stamped with a monotonically
//! increasing epoch so readers can tell a fresh schedule from one they
//! already applied, and a stale read (an epoch older than the latest
//! publication) is detectable instead of silently rolling the cluster
//! backwards. Epoch `0` is reserved for the initial assignment applied
//! at topology submission, before the store has seen any publish.

use tstorm_cluster::{Assignment, VersionedAssignment};
use tstorm_sched::ScheduleExplanation;
use tstorm_types::{AssignmentId, SimTime};

/// One published schedule, as stored in the shared DB.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredSchedule {
    /// The schedule's id (its publication timestamp).
    pub id: AssignmentId,
    /// The epoch-stamped assignment.
    pub versioned: VersionedAssignment,
    /// Virtual time of publication.
    pub published_at: SimTime,
    /// Name of the algorithm that produced it.
    pub algorithm: String,
    /// The scheduler's decision records for this publication, when
    /// explanation was enabled at generation time.
    pub explanation: Option<ScheduleExplanation>,
}

/// The shared schedule DB between generator and Nimbus.
///
/// Holds the latest publication only — like the paper's DB, a newer
/// schedule supersedes an unfetched older one — plus the epoch watermark
/// of what Nimbus has fetched so far.
#[derive(Debug, Default)]
pub struct ScheduleStore {
    latest: Option<StoredSchedule>,
    /// Epoch handed out to the most recent publication (0 = none yet).
    last_epoch: u64,
    /// Highest epoch Nimbus has fetched (0 = only the initial schedule).
    fetched_epoch: u64,
    publishes: u64,
    discards: u64,
}

impl ScheduleStore {
    /// An empty store: nothing published, nothing fetched.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a schedule, stamping it with the next epoch, and
    /// returns that epoch. `explanation` carries the scheduler's
    /// decision records when explanation is enabled, so a reader can
    /// reconstruct *why* the epoch's placements were made.
    pub fn publish(
        &mut self,
        id: AssignmentId,
        assignment: Assignment,
        at: SimTime,
        algorithm: impl Into<String>,
        explanation: Option<ScheduleExplanation>,
    ) -> u64 {
        self.last_epoch += 1;
        self.publishes += 1;
        self.latest = Some(StoredSchedule {
            id,
            versioned: VersionedAssignment::new(self.last_epoch, assignment),
            published_at: at,
            algorithm: algorithm.into(),
            explanation,
        });
        self.last_epoch
    }

    /// The latest publication, if any survives in the store.
    #[must_use]
    pub fn latest(&self) -> Option<&StoredSchedule> {
        self.latest.as_ref()
    }

    /// Epoch of the most recent publication (0 when nothing was ever
    /// published). Note a discarded schedule's epoch stays burned:
    /// epochs never repeat.
    #[must_use]
    pub fn latest_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// True when `epoch` is older than the most recent publication — a
    /// reader holding it would be acting on a stale schedule.
    #[must_use]
    pub fn is_stale(&self, epoch: u64) -> bool {
        epoch < self.last_epoch
    }

    /// True when a publication is sitting in the store that Nimbus has
    /// not fetched yet.
    #[must_use]
    pub fn has_unfetched(&self) -> bool {
        self.latest
            .as_ref()
            .is_some_and(|s| s.versioned.epoch > self.fetched_epoch)
    }

    /// Nimbus's fetch: returns the latest publication if it is newer
    /// than anything fetched before (advancing the fetch watermark), or
    /// `None` when the store holds no news.
    pub fn fetch(&mut self) -> Option<StoredSchedule> {
        let latest = self.latest.as_ref()?;
        if latest.versioned.epoch <= self.fetched_epoch {
            return None;
        }
        self.fetched_epoch = latest.versioned.epoch;
        Some(latest.clone())
    }

    /// Highest epoch fetched so far.
    #[must_use]
    pub fn fetched_epoch(&self) -> u64 {
        self.fetched_epoch
    }

    /// Drops a published-but-unfetched schedule (e.g. its algorithm was
    /// hot-swapped out before any fetch), returning it. A schedule that
    /// was already fetched is past discarding and stays.
    pub fn discard_unfetched(&mut self) -> Option<StoredSchedule> {
        if self.has_unfetched() {
            self.discards += 1;
            self.latest.take()
        } else {
            None
        }
    }

    /// Publications accepted over the store's lifetime.
    #[must_use]
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    /// Unfetched publications discarded over the store's lifetime.
    #[must_use]
    pub fn discards(&self) -> u64 {
        self.discards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish(store: &mut ScheduleStore, at_secs: u64) -> u64 {
        store.publish(
            AssignmentId::from_timestamp_micros(at_secs * 1_000_000),
            Assignment::new(),
            SimTime::from_secs(at_secs),
            "test",
            None,
        )
    }

    #[test]
    fn explanation_rides_the_publication() {
        let mut store = ScheduleStore::new();
        store.publish(
            AssignmentId::from_timestamp_micros(1_000_000),
            Assignment::new(),
            SimTime::from_secs(1),
            "t-storm",
            Some(ScheduleExplanation::new("t-storm")),
        );
        let fetched = store.fetch().expect("publication");
        let ex = fetched.explanation.expect("explanation persisted");
        assert_eq!(ex.algorithm, "t-storm");
    }

    #[test]
    fn epochs_increase_monotonically() {
        let mut store = ScheduleStore::new();
        assert_eq!(store.latest_epoch(), 0);
        assert_eq!(publish(&mut store, 10), 1);
        assert_eq!(publish(&mut store, 20), 2);
        assert_eq!(store.latest_epoch(), 2);
        assert!(store.is_stale(1));
        assert!(!store.is_stale(2));
    }

    #[test]
    fn fetch_returns_only_news() {
        let mut store = ScheduleStore::new();
        assert!(store.fetch().is_none(), "empty store has no news");
        publish(&mut store, 10);
        let s = store.fetch().expect("first fetch sees the publication");
        assert_eq!(s.versioned.epoch, 1);
        assert!(
            store.fetch().is_none(),
            "refetching the same epoch is a no-op"
        );
        publish(&mut store, 20);
        assert_eq!(store.fetch().expect("news again").versioned.epoch, 2);
        assert_eq!(store.fetched_epoch(), 2);
    }

    #[test]
    fn discard_drops_only_unfetched_schedules() {
        let mut store = ScheduleStore::new();
        assert!(store.discard_unfetched().is_none());
        publish(&mut store, 10);
        let _ = store.fetch();
        assert!(
            store.discard_unfetched().is_none(),
            "a fetched schedule is past discarding"
        );
        publish(&mut store, 20);
        let dropped = store.discard_unfetched().expect("unfetched publication");
        assert_eq!(dropped.versioned.epoch, 2);
        assert!(store.latest().is_none());
        assert_eq!(store.discards(), 1);
        // The burned epoch never repeats.
        assert_eq!(publish(&mut store, 30), 3);
    }
}
