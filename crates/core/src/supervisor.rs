//! Per-node supervisor state machines.
//!
//! Each worker node runs a supervisor that (a) heartbeats to Nimbus on
//! a jittered interval — Nimbus's *only* evidence the node is alive —
//! and (b) periodically fetches the cluster-visible assignment and
//! applies its own node's slice when the epoch is newer than what it
//! runs. Fetch timers are per-node, phase-staggered and jittered, so a
//! published schedule rolls out node by node: for a short window
//! different nodes run different assignment epochs, exactly as in a real
//! Storm cluster where supervisors poll ZooKeeper independently.
//!
//! Timers are driven by the system's control loop (the simulated
//! timeline), not wall clocks, and each supervisor draws jitter from its
//! own [`DetRng`] stream seeded from `(run seed, node id)` — adding or
//! muting one node's activity never perturbs another's schedule, which
//! keeps same-seed runs byte-identical.

use tstorm_types::{DetRng, NodeId, SimTime};

/// What happened at a heartbeat tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatOutcome {
    /// The heartbeat reached Nimbus. `was_down` reports whether the
    /// supervisor observed its node actually down since the last
    /// successful heartbeat (a genuine crash-and-restart, as opposed to
    /// heartbeats lost in transit).
    Sent {
        /// The node was really down at some point since the last
        /// heartbeat that got through.
        was_down: bool,
    },
    /// The heartbeat did not reach Nimbus: the node is down or the
    /// stream is muted by a `heartbeat-loss` fault.
    Missed,
}

/// One node's supervisor.
#[derive(Debug)]
pub struct Supervisor {
    node: NodeId,
    rng: DetRng,
    heartbeat_period: SimTime,
    fetch_period: SimTime,
    jitter: f64,
    next_heartbeat: SimTime,
    next_fetch: SimTime,
    /// Epoch of the assignment slice this node currently runs (0 = the
    /// initial assignment applied at submission).
    applied_epoch: u64,
    /// Set while the node is observed down at a heartbeat tick; consumed
    /// by the next successful heartbeat to report a genuine restart.
    observed_down: bool,
    heartbeats_sent: u64,
    heartbeats_missed: u64,
    fetches: u64,
    epochs_applied: u64,
}

/// Phase-staggers initial timers: node `n` of `total` starts its period
/// at fraction `(n + 1) / (total + 1)` — no two nodes (and no node and
/// the global period boundary) coincide.
fn staggered(period: SimTime, index: usize, total: usize) -> SimTime {
    let frac = (index + 1) as f64 / (total + 1) as f64;
    SimTime::from_micros((period.as_micros() as f64 * frac) as u64)
}

impl Supervisor {
    /// Creates the supervisor for `node` out of `total` nodes.
    ///
    /// `seed` is the run seed; the supervisor derives its own
    /// decorrelated jitter stream from it, so supervisors are
    /// deterministic and mutually independent.
    #[must_use]
    pub fn new(
        node: NodeId,
        total: usize,
        seed: u64,
        heartbeat_period: SimTime,
        fetch_period: SimTime,
        jitter: f64,
    ) -> Self {
        // "supervis" in ASCII — a fixed salt keeping this stream family
        // apart from the data plane's, which seeds from the raw run seed.
        let mut parent = DetRng::seed_from(seed ^ 0x7375_7065_7276_6973);
        let rng = parent.split(&format!("supervisor-{}", node.index()));
        Self {
            node,
            rng,
            heartbeat_period,
            fetch_period,
            jitter,
            next_heartbeat: staggered(heartbeat_period, node.as_usize(), total),
            next_fetch: staggered(fetch_period, node.as_usize(), total),
            applied_epoch: 0,
            observed_down: false,
            heartbeats_sent: 0,
            heartbeats_missed: 0,
            fetches: 0,
            epochs_applied: 0,
        }
    }

    /// The node this supervisor runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The earliest virtual time this supervisor next acts.
    /// Heartbeats always run; the fetch timer only participates when
    /// store-driven rollout is enabled (T-Storm mode).
    #[must_use]
    pub fn next_event(&self, fetch_enabled: bool) -> SimTime {
        if fetch_enabled {
            self.next_heartbeat.min(self.next_fetch)
        } else {
            self.next_heartbeat
        }
    }

    /// Advances the heartbeat timer if due at `now`, reporting what
    /// happened; `None` when the timer is not due yet.
    pub fn poll_heartbeat(
        &mut self,
        now: SimTime,
        node_live: bool,
        muted: bool,
    ) -> Option<HeartbeatOutcome> {
        if now < self.next_heartbeat {
            return None;
        }
        self.next_heartbeat = now + self.jittered(self.heartbeat_period);
        if !node_live {
            self.observed_down = true;
            self.heartbeats_missed += 1;
            return Some(HeartbeatOutcome::Missed);
        }
        if muted {
            self.heartbeats_missed += 1;
            return Some(HeartbeatOutcome::Missed);
        }
        self.heartbeats_sent += 1;
        let was_down = std::mem::take(&mut self.observed_down);
        Some(HeartbeatOutcome::Sent { was_down })
    }

    /// Advances the fetch timer if due at `now`; returns the new epoch
    /// when the cluster assignment (`store_epoch`) is newer than what
    /// this node runs and the node is up to apply it.
    pub fn poll_fetch(&mut self, now: SimTime, node_live: bool, store_epoch: u64) -> Option<u64> {
        if now < self.next_fetch {
            return None;
        }
        self.next_fetch = now + self.jittered(self.fetch_period);
        if !node_live || store_epoch <= self.applied_epoch {
            return None;
        }
        self.applied_epoch = store_epoch;
        self.fetches += 1;
        self.epochs_applied += 1;
        Some(store_epoch)
    }

    fn jittered(&mut self, period: SimTime) -> SimTime {
        let micros = self.rng.jitter(period.as_micros() as f64, self.jitter);
        SimTime::from_micros((micros as u64).max(1))
    }

    /// Epoch of the assignment slice this node currently runs.
    #[must_use]
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch
    }

    /// Heartbeats that reached Nimbus.
    #[must_use]
    pub fn heartbeats_sent(&self) -> u64 {
        self.heartbeats_sent
    }

    /// Heartbeat ticks that never reached Nimbus.
    #[must_use]
    pub fn heartbeats_missed(&self) -> u64 {
        self.heartbeats_missed
    }

    /// Fetches that picked up a new epoch.
    #[must_use]
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Epochs applied on this node.
    #[must_use]
    pub fn epochs_applied(&self) -> u64 {
        self.epochs_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor(node: u32) -> Supervisor {
        Supervisor::new(
            NodeId::new(node),
            4,
            42,
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            0.2,
        )
    }

    #[test]
    fn initial_timers_are_staggered_per_node() {
        let phases: Vec<SimTime> = (0..4).map(|n| supervisor(n).next_event(true)).collect();
        for w in phases.windows(2) {
            assert!(
                w[0] < w[1],
                "phases must be strictly increasing: {phases:?}"
            );
        }
        assert!(phases[3] < SimTime::from_secs(5));
    }

    #[test]
    fn heartbeat_reports_restart_after_observed_downtime() {
        let mut s = supervisor(0);
        let t0 = s.next_event(false);
        assert!(s
            .poll_heartbeat(t0 - SimTime::from_micros(1), true, false)
            .is_none());
        assert_eq!(
            s.poll_heartbeat(t0, true, false),
            Some(HeartbeatOutcome::Sent { was_down: false })
        );
        // Node down over the next two ticks.
        let t1 = s.next_event(false);
        assert_eq!(
            s.poll_heartbeat(t1, false, false),
            Some(HeartbeatOutcome::Missed)
        );
        let t2 = s.next_event(false);
        assert_eq!(
            s.poll_heartbeat(t2, false, false),
            Some(HeartbeatOutcome::Missed)
        );
        // Back up: the first heartbeat through reports the downtime once.
        let t3 = s.next_event(false);
        assert_eq!(
            s.poll_heartbeat(t3, true, false),
            Some(HeartbeatOutcome::Sent { was_down: true })
        );
        let t4 = s.next_event(false);
        assert_eq!(
            s.poll_heartbeat(t4, true, false),
            Some(HeartbeatOutcome::Sent { was_down: false })
        );
        assert_eq!(s.heartbeats_sent(), 3);
        assert_eq!(s.heartbeats_missed(), 2);
    }

    #[test]
    fn muted_heartbeats_are_missed_without_marking_downtime() {
        let mut s = supervisor(1);
        let t0 = s.next_event(false);
        assert_eq!(
            s.poll_heartbeat(t0, true, true),
            Some(HeartbeatOutcome::Missed)
        );
        let t1 = s.next_event(false);
        // Mute lifted: the node was never down, so no restart report.
        assert_eq!(
            s.poll_heartbeat(t1, true, false),
            Some(HeartbeatOutcome::Sent { was_down: false })
        );
    }

    #[test]
    fn fetch_applies_only_newer_epochs() {
        let mut s = supervisor(2);
        let t0 = s.next_fetch;
        assert_eq!(s.poll_fetch(t0, true, 0), None, "epoch 0 is what we run");
        let t1 = s.next_fetch;
        assert_eq!(s.poll_fetch(t1, true, 3), Some(3));
        assert_eq!(s.applied_epoch(), 3);
        let t2 = s.next_fetch;
        assert_eq!(s.poll_fetch(t2, true, 3), None, "no news");
        let t3 = s.next_fetch;
        assert_eq!(s.poll_fetch(t3, false, 4), None, "down nodes cannot apply");
        assert_eq!(s.applied_epoch(), 3);
        assert_eq!(s.fetches(), 1);
    }

    #[test]
    fn jitter_streams_are_deterministic_and_independent() {
        let mut a1 = supervisor(0);
        let mut a2 = supervisor(0);
        let mut b = supervisor(1);
        for _ in 0..10 {
            let t = a1.next_event(false);
            let _ = a1.poll_heartbeat(t, true, false);
            let t = a2.next_event(false);
            let _ = a2.poll_heartbeat(t, true, false);
            let t = b.next_event(false);
            let _ = b.poll_heartbeat(t, true, false);
        }
        assert_eq!(
            a1.next_heartbeat, a2.next_heartbeat,
            "same node, same stream"
        );
        assert_ne!(
            a1.next_heartbeat, b.next_heartbeat,
            "different nodes decorrelate"
        );
    }
}
