//! Nimbus: the cluster master's decision state.
//!
//! Owns what the real Nimbus daemon owns — the scheduler registry, the
//! active (hot-swappable) scheduling algorithm, the cluster-visible
//! assignment it last fetched from the [`crate::store::ScheduleStore`],
//! and a heartbeat-derived liveness table. Nimbus never observes node
//! health directly: a node is alive exactly as long as its supervisor's
//! heartbeats keep arriving, so a muted heartbeat stream (the
//! `heartbeat-loss` fault) produces a false-positive death declaration
//! and a genuinely crashed node stays schedulable until its silence
//! crosses the miss threshold.

use tstorm_cluster::{Assignment, ClusterSpec, VersionedAssignment};
use tstorm_sched::{SchedulerRegistry, SchedulingInput, SwappableScheduler};
use tstorm_types::{NodeId, Result, SimTime};

/// Nimbus's record of a node it has declared dead.
#[derive(Debug, Clone, Copy)]
struct DeadNode {
    /// When the declaration was made.
    declared_at: SimTime,
    /// Whether a schedule was published while the node was considered
    /// dead (i.e. its executors were reassigned under the declaration).
    reassigned: bool,
}

/// A node newly declared dead by [`Nimbus::update_liveness`].
#[derive(Debug, Clone, Copy)]
pub struct DeadDeclaration {
    /// The node.
    pub node: NodeId,
    /// Heartbeat periods it had been silent for at declaration time.
    pub missed: u32,
}

/// The outcome of a heartbeat arriving for a previously-dead node.
#[derive(Debug, Clone, Copy)]
pub struct Reconciliation {
    /// The node taken back into the schedulable set.
    pub node: NodeId,
    /// True when the death declaration was a false positive: the node
    /// never actually went down (its heartbeats were merely lost) yet a
    /// reassignment was made under the declaration.
    pub false_positive: bool,
}

/// Aggregated control-plane counters, surfaced through
/// [`crate::TStormSystem::control_stats`] and the metrics registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Heartbeats that reached Nimbus.
    pub heartbeats_sent: u64,
    /// Heartbeat ticks that did not reach Nimbus (node down or stream
    /// muted by a `heartbeat-loss` fault).
    pub heartbeats_missed: u64,
    /// Supervisor fetches that picked up a new assignment epoch.
    pub fetches: u64,
    /// Assignment epochs applied across all supervisors.
    pub epochs_applied: u64,
    /// Nodes Nimbus declared dead from heartbeat silence.
    pub nodes_declared_dead: u64,
    /// Dead declarations later withdrawn when heartbeats resumed.
    pub reconciliations: u64,
    /// Reconciliations where the node had never failed but its
    /// executors had already been reassigned — the cost of trusting
    /// heartbeats.
    pub false_positive_reassignments: u64,
}

/// The cluster master: scheduler ownership plus heartbeat liveness.
pub struct Nimbus {
    registry: SchedulerRegistry,
    scheduler: SwappableScheduler,
    /// The assignment Nimbus last fetched from the store and wrote to
    /// cluster state for the supervisors to pick up. `None` until the
    /// first fetch; the initial (epoch 0) assignment is applied directly
    /// at submission and never passes through here.
    cluster_assignment: Option<VersionedAssignment>,
    /// Last heartbeat arrival per node.
    last_heartbeat: Vec<SimTime>,
    /// Death declarations currently in force.
    dead: Vec<Option<DeadNode>>,
    nodes_declared_dead: u64,
    reconciliations: u64,
    false_positive_reassignments: u64,
}

impl std::fmt::Debug for Nimbus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nimbus")
            .field("scheduler", &self.scheduler.current_name())
            .field("cluster_epoch", &self.cluster_epoch())
            .field("declared_dead", &self.declared_dead())
            .finish()
    }
}

impl Nimbus {
    /// Creates a Nimbus over `num_nodes` supervisors, with every node
    /// considered alive (heartbeats are due from `t = 0`).
    pub fn new(
        registry: SchedulerRegistry,
        initial_scheduler: &str,
        num_nodes: usize,
    ) -> Result<Self> {
        let scheduler = SwappableScheduler::new(registry.create(initial_scheduler)?);
        Ok(Self {
            registry,
            scheduler,
            cluster_assignment: None,
            last_heartbeat: vec![SimTime::ZERO; num_nodes],
            dead: vec![None; num_nodes],
            nodes_declared_dead: 0,
            reconciliations: 0,
            false_positive_reassignments: 0,
        })
    }

    /// Runs the active scheduling algorithm.
    ///
    /// # Errors
    ///
    /// Propagates the scheduler's own failure.
    pub fn schedule(&self, input: &SchedulingInput) -> Result<Assignment> {
        self.scheduler.schedule(input)
    }

    /// Name of the active scheduling algorithm.
    #[must_use]
    pub fn scheduler_name(&self) -> String {
        self.scheduler.current_name()
    }

    /// Turns per-placement decision recording on or off for the active
    /// algorithm (and any algorithm hot-swapped in later).
    pub fn set_explain(&self, on: bool) {
        self.scheduler.set_explain_shared(on);
    }

    /// Takes the decision records of the most recent
    /// [`Nimbus::schedule`] call, if any were recorded.
    #[must_use]
    pub fn take_explanation(&self) -> Option<tstorm_sched::ScheduleExplanation> {
        self.scheduler.take_explanation_shared()
    }

    /// Hot-swaps the active algorithm from the registry.
    ///
    /// # Errors
    ///
    /// Returns [`tstorm_types::TStormError::UnknownScheduler`] when no
    /// such algorithm is registered.
    pub fn swap_scheduler(&mut self, name: &str) -> Result<()> {
        self.scheduler.swap_from_registry(&self.registry, name)
    }

    /// Registers a new algorithm for later swaps.
    pub fn register_scheduler(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn tstorm_sched::Scheduler> + Send + Sync + 'static,
    ) {
        self.registry.register(name, factory);
    }

    /// Installs a fetched schedule as the cluster-visible assignment.
    pub fn install(&mut self, fetched: VersionedAssignment) {
        self.cluster_assignment = Some(fetched);
    }

    /// The cluster-visible assignment, if any fetch has happened.
    #[must_use]
    pub fn cluster_assignment(&self) -> Option<&VersionedAssignment> {
        self.cluster_assignment.as_ref()
    }

    /// Epoch of the cluster-visible assignment (0 = initial only).
    #[must_use]
    pub fn cluster_epoch(&self) -> u64 {
        self.cluster_assignment.as_ref().map_or(0, |v| v.epoch)
    }

    /// Records a heartbeat arrival. `was_down` is the supervisor's own
    /// report that its node had actually been down since the previous
    /// heartbeat (distinguishing a genuine crash-and-restart from mere
    /// heartbeat loss). Returns a reconciliation when the node had been
    /// declared dead.
    pub fn record_heartbeat(
        &mut self,
        node: NodeId,
        at: SimTime,
        was_down: bool,
    ) -> Option<Reconciliation> {
        self.last_heartbeat[node.as_usize()] = at;
        let dead = self.dead[node.as_usize()].take()?;
        self.reconciliations += 1;
        let false_positive = dead.reassigned && !was_down;
        if false_positive {
            self.false_positive_reassignments += 1;
        }
        Some(Reconciliation {
            node,
            false_positive,
        })
    }

    /// Sweeps the heartbeat table and declares dead every node whose
    /// silence has reached `miss_threshold` heartbeat periods. Call only
    /// while Nimbus is up — a crashed Nimbus declares nothing.
    pub fn update_liveness(
        &mut self,
        now: SimTime,
        heartbeat_period: SimTime,
        miss_threshold: u32,
    ) -> Vec<DeadDeclaration> {
        let mut declared = Vec::new();
        let period = heartbeat_period.as_micros();
        for (i, last) in self.last_heartbeat.iter().enumerate() {
            if self.dead[i].is_some() {
                continue;
            }
            let silence = now.as_micros().saturating_sub(last.as_micros());
            let missed = (silence / period) as u32;
            if missed >= miss_threshold {
                self.dead[i] = Some(DeadNode {
                    declared_at: now,
                    reassigned: false,
                });
                self.nodes_declared_dead += 1;
                declared.push(DeadDeclaration {
                    node: NodeId::new(i as u32),
                    missed,
                });
            }
        }
        declared
    }

    /// Whether Nimbus currently considers `node` dead.
    #[must_use]
    pub fn is_declared_dead(&self, node: NodeId) -> bool {
        self.dead[node.as_usize()].is_some()
    }

    /// Nodes currently declared dead, in id order.
    #[must_use]
    pub fn declared_dead(&self) -> Vec<NodeId> {
        self.dead
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| NodeId::new(i as u32)))
            .collect()
    }

    /// When `node` was declared dead, if it currently is.
    #[must_use]
    pub fn declared_dead_at(&self, node: NodeId) -> Option<SimTime> {
        self.dead[node.as_usize()].map(|d| d.declared_at)
    }

    /// Overwrites the cluster view's liveness with Nimbus's belief: a
    /// node is schedulable iff it is not declared dead — even if it has
    /// in truth already crashed (the declaration just hasn't caught up).
    pub fn apply_liveness_view(&self, cluster: &mut ClusterSpec) {
        for i in 0..self.dead.len() {
            let node = NodeId::new(i as u32);
            cluster.set_node_live(node, self.dead[i].is_none());
        }
    }

    /// Notes that a schedule was just published: any node currently
    /// under a death declaration has now had executors reassigned away
    /// from it, which turns a later same-node reconciliation into a
    /// false positive if the node never actually failed.
    pub fn note_publish(&mut self) {
        for dead in self.dead.iter_mut().flatten() {
            dead.reassigned = true;
        }
    }

    /// Nimbus's share of the control-plane counters.
    #[must_use]
    pub fn stats(&self) -> ControlStats {
        ControlStats {
            nodes_declared_dead: self.nodes_declared_dead,
            reconciliations: self.reconciliations,
            false_positive_reassignments: self.false_positive_reassignments,
            ..ControlStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nimbus(nodes: usize) -> Nimbus {
        Nimbus::new(SchedulerRegistry::with_builtins(), "t-storm", nodes).expect("builtin")
    }

    #[test]
    fn silence_crosses_threshold_into_death() {
        let mut n = nimbus(3);
        let period = SimTime::from_secs(5);
        // t=30s, node 1 heartbeated at 28s; others silent since 0.
        n.record_heartbeat(NodeId::new(1), SimTime::from_secs(28), false);
        let declared = n.update_liveness(SimTime::from_secs(30), period, 3);
        let ids: Vec<u32> = declared.iter().map(|d| d.node.index()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert!(declared.iter().all(|d| d.missed >= 3));
        assert!(n.is_declared_dead(NodeId::new(0)));
        assert!(!n.is_declared_dead(NodeId::new(1)));
        // Already-declared nodes are not re-declared.
        assert!(n
            .update_liveness(SimTime::from_secs(35), period, 3)
            .is_empty());
    }

    #[test]
    fn reconciliation_flags_false_positive_only_after_reassignment() {
        let mut n = nimbus(2);
        let period = SimTime::from_secs(5);
        let _ = n.update_liveness(SimTime::from_secs(20), period, 3);
        assert!(n.is_declared_dead(NodeId::new(0)));

        // Node 0: heartbeats resume before any publish — benign.
        let rec = n
            .record_heartbeat(NodeId::new(0), SimTime::from_secs(22), false)
            .expect("was declared dead");
        assert!(!rec.false_positive);

        // Node 1: a publish lands while it is declared dead, then its
        // heartbeats resume without the node ever having been down.
        n.note_publish();
        let rec = n
            .record_heartbeat(NodeId::new(1), SimTime::from_secs(25), false)
            .expect("was declared dead");
        assert!(rec.false_positive);
        assert_eq!(n.stats().false_positive_reassignments, 1);
        assert_eq!(n.stats().reconciliations, 2);
    }

    #[test]
    fn genuine_restart_is_not_a_false_positive() {
        let mut n = nimbus(1);
        let _ = n.update_liveness(SimTime::from_secs(20), SimTime::from_secs(5), 3);
        n.note_publish();
        // The supervisor reports the node really was down.
        let rec = n
            .record_heartbeat(NodeId::new(0), SimTime::from_secs(40), true)
            .expect("was declared dead");
        assert!(!rec.false_positive);
    }

    #[test]
    fn liveness_view_follows_belief_not_truth() {
        let mut n = nimbus(2);
        let mut cluster =
            ClusterSpec::homogeneous(2, 4, tstorm_types::Mhz::new(8_000.0)).expect("valid spec");
        // Ground truth: node 0 crashed. Belief: node 1 is dead.
        cluster.set_node_live(NodeId::new(0), false);
        n.record_heartbeat(NodeId::new(0), SimTime::from_secs(19), false);
        let _ = n.update_liveness(SimTime::from_secs(20), SimTime::from_secs(5), 3);
        assert!(n.is_declared_dead(NodeId::new(1)));
        n.apply_liveness_view(&mut cluster);
        assert!(
            cluster.is_node_live(NodeId::new(0)),
            "undeclared crash stays schedulable"
        );
        assert!(
            !cluster.is_node_live(NodeId::new(1)),
            "declared node is excluded"
        );
    }
}
