//! Causal span chains and streaming critical-path attribution.
//!
//! Every live tuple tree in the simulator carries a *span chain*: a
//! persistent (structurally shared) linked list of [`SpanSeg`]s recording
//! how much virtual time the tuple spent queued, being serviced, in
//! flight on the network, or waiting for a replay. On fan-out each
//! output envelope extends its parent's chain with one network segment —
//! an `Arc` bump plus one allocation — so sibling branches share their
//! common prefix.
//!
//! When an ack root completes, the chain reaching the completing message
//! *is* the critical path: in an and-join tuple tree the root finishes
//! exactly when its last outstanding branch does, so the completing
//! branch is the latest-finishing — critical — one. The
//! [`CriticalPathCollector`] folds each completed root's chain into
//! per-component, per-edge, per-node-pair and per-hop-class aggregates,
//! plus a bounded list of per-root breakdowns.
//!
//! Invariant (asserted by an integration test): for a never-replayed
//! root, `queue_us + service_us + network_us` along the critical path
//! equals the root's completion latency *exactly* — all quantities are
//! integer microseconds carved from the same virtual clock, so the
//! segments telescope from emit to completion with no rounding loss.
//! Replay segments measure re-emission wait and sit *outside* that
//! telescoped interval (latency is counted from the re-emission).
//!
//! Transfer batching preserves the invariant: when the engine coalesces
//! several tuples into one batch envelope, the batch's single network
//! delivery is fanned back out into one [`SpanKind::Network`] segment
//! *per tuple*, each spanning that tuple's staging instant to the shared
//! batch delivery instant. A tuple that waited inside an open batch
//! therefore charges the wait to its network segment, and every chain
//! still telescopes emit → completion exactly.
//!
//! Everything here is deterministic: aggregation uses ordered maps and
//! integer arithmetic only, so same-seed runs render byte-identical
//! summaries.

use crate::event::HopClass;
use crate::json::ObjectWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use tstorm_types::{ExecutorId, NodeId, SimTime, TupleId};

/// What a span segment's time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Waiting in an executor's input queue.
    Queue,
    /// Being processed by an executor.
    Service,
    /// In flight between two executors (any hop class).
    Network,
    /// Waiting in the spout's replay queue after a timeout.
    Replay,
}

impl SpanKind {
    /// Stable lower-case label used in JSON artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Service => "service",
            SpanKind::Network => "network",
            SpanKind::Replay => "replay",
        }
    }
}

/// One latency segment on a tuple's causal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSeg {
    /// What the time was spent on.
    pub kind: SpanKind,
    /// Duration in integer virtual microseconds.
    pub micros: u64,
    /// Sending executor (network) or the owning executor otherwise.
    pub from_executor: ExecutorId,
    /// Receiving/owning executor.
    pub executor: ExecutorId,
    /// Node the segment started on.
    pub from_node: NodeId,
    /// Node the segment ended on (differs only for inter-node hops).
    pub node: NodeId,
    /// Hop classification, set for network segments only.
    pub hop: Option<HopClass>,
}

impl SpanSeg {
    /// A queue-wait segment at `executor` on `node`.
    #[must_use]
    pub fn queue(executor: ExecutorId, node: NodeId, micros: u64) -> Self {
        Self {
            kind: SpanKind::Queue,
            micros,
            from_executor: executor,
            executor,
            from_node: node,
            node,
            hop: None,
        }
    }

    /// A service segment at `executor` on `node`.
    #[must_use]
    pub fn service(executor: ExecutorId, node: NodeId, micros: u64) -> Self {
        Self {
            kind: SpanKind::Service,
            micros,
            from_executor: executor,
            executor,
            from_node: node,
            node,
            hop: None,
        }
    }

    /// A network segment from one executor to another.
    #[must_use]
    pub fn network(
        from_executor: ExecutorId,
        from_node: NodeId,
        executor: ExecutorId,
        node: NodeId,
        hop: HopClass,
        micros: u64,
    ) -> Self {
        Self {
            kind: SpanKind::Network,
            micros,
            from_executor,
            executor,
            from_node,
            node,
            hop: Some(hop),
        }
    }

    /// A replay-wait segment attributed to the re-emitting spout.
    #[must_use]
    pub fn replay(executor: ExecutorId, node: NodeId, micros: u64) -> Self {
        Self {
            kind: SpanKind::Replay,
            micros,
            from_executor: executor,
            executor,
            from_node: node,
            node,
            hop: None,
        }
    }
}

/// One link of a persistent span chain. Chains grow at the head; the
/// shared tail is reference-counted so fan-out costs one `Arc` clone.
/// Atomic counting (rather than `Rc`) lets chains cross thread
/// boundaries: the engine's parallel stepping mode hands completed
/// roots' chains to worker lanes for decomposition.
#[derive(Debug)]
pub struct SpanLink {
    /// The newest segment.
    pub seg: SpanSeg,
    /// The rest of the path back to the root emission (`None` at emit).
    pub parent: SpanChain,
}

/// A possibly-empty span chain. `None` both for "no segments yet" and
/// for "spans disabled", which keeps the disabled path allocation-free.
pub type SpanChain = Option<Arc<SpanLink>>;

/// Returns `parent` extended by `seg` (O(1), shares the prefix).
#[must_use]
pub fn extend(parent: &SpanChain, seg: SpanSeg) -> SpanChain {
    Some(Arc::new(SpanLink {
        seg,
        parent: parent.clone(),
    }))
}

/// Sums a chain's segment durations as
/// `[queue, service, network, replay]` microseconds.
#[must_use]
pub fn sum_by_kind(chain: &SpanChain) -> [u64; 4] {
    let mut sums = [0u64; 4];
    let mut cur = chain;
    while let Some(link) = cur {
        let idx = match link.seg.kind {
            SpanKind::Queue => 0,
            SpanKind::Service => 1,
            SpanKind::Network => 2,
            SpanKind::Replay => 3,
        };
        sums[idx] += link.seg.micros;
        cur = &link.parent;
    }
    sums
}

/// One completed root's critical-path decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootBreakdown {
    /// The root tuple.
    pub tuple: TupleId,
    /// Completion latency (completion − emit) in microseconds.
    pub latency_us: u64,
    /// Queue-wait microseconds on the critical path.
    pub queue_us: u64,
    /// Service microseconds on the critical path.
    pub service_us: u64,
    /// Network microseconds on the critical path.
    pub network_us: u64,
    /// Replay-wait microseconds (outside `latency_us`, see module docs).
    pub replay_us: u64,
    /// Number of segments on the critical path.
    pub segments: u32,
}

/// Per-component queue/service totals over all observed critical paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentAgg {
    /// Queue + service segments attributed to the component.
    pub segments: u64,
    /// Total queue-wait microseconds.
    pub queue_us: u64,
    /// Total service microseconds.
    pub service_us: u64,
}

/// Per-edge (sending component → receiving component) network totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeAgg {
    /// Network hops observed on critical paths.
    pub hops: u64,
    /// Total network microseconds.
    pub network_us: u64,
    /// How many of those hops crossed nodes.
    pub inter_node_hops: u64,
}

/// Per-(source node, destination node) network totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodePairAgg {
    /// Network hops observed on critical paths.
    pub hops: u64,
    /// Total network microseconds.
    pub network_us: u64,
}

/// Grand totals over all observed roots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathTotals {
    /// Completed roots observed.
    pub roots: u64,
    /// Roots whose path contained a replay segment.
    pub replayed_roots: u64,
    /// Sum of completion latencies (µs).
    pub latency_us: u64,
    /// Maximum single-root latency (µs).
    pub max_latency_us: u64,
    /// Sum of critical-path queue waits (µs).
    pub queue_us: u64,
    /// Sum of critical-path service times (µs).
    pub service_us: u64,
    /// Sum of critical-path network times (µs).
    pub network_us: u64,
    /// Sum of replay waits (µs).
    pub replay_us: u64,
}

/// One completed root's chain walk, decomposed off the critical path of
/// the engine coordinator: the pointer chase and integer folds happen on
/// a worker lane, and the (label-free) result is merged into the
/// [`CriticalPathCollector`] via [`CriticalPathCollector::absorb`].
/// Entries are keyed by [`ExecutorId`]/[`NodeId`] rather than display
/// labels so lanes never need the collector's label table.
#[derive(Debug, Clone)]
pub struct PathPartial {
    /// Per-root sums and segment count (the retained breakdown).
    pub breakdown: RootBreakdown,
    /// Queue/service segments in chain order: (owner, kind, µs).
    comp_segs: Vec<(ExecutorId, SpanKind, u64)>,
    /// Network segments in chain order.
    net_segs: Vec<SpanSeg>,
}

/// Walks one completed root's span chain into a [`PathPartial`] — the
/// pure half of [`CriticalPathCollector::observe_root`]. Safe to run on
/// any thread: it touches nothing but the chain.
#[must_use]
pub fn decompose_root(
    tuple: TupleId,
    emit_at: SimTime,
    completed_at: SimTime,
    chain: &SpanChain,
) -> PathPartial {
    let latency_us = completed_at.saturating_sub(emit_at).as_micros();
    let mut sums = [0u64; 4];
    let mut segments: u32 = 0;
    let mut comp_segs = Vec::new();
    let mut net_segs = Vec::new();
    let mut cur = chain;
    while let Some(link) = cur {
        let seg = &link.seg;
        segments += 1;
        match seg.kind {
            SpanKind::Queue => {
                sums[0] += seg.micros;
                comp_segs.push((seg.executor, SpanKind::Queue, seg.micros));
            }
            SpanKind::Service => {
                sums[1] += seg.micros;
                comp_segs.push((seg.executor, SpanKind::Service, seg.micros));
            }
            SpanKind::Network => {
                sums[2] += seg.micros;
                net_segs.push(*seg);
            }
            SpanKind::Replay => sums[3] += seg.micros,
        }
        cur = &link.parent;
    }
    PathPartial {
        breakdown: RootBreakdown {
            tuple,
            latency_us,
            queue_us: sums[0],
            service_us: sums[1],
            network_us: sums[2],
            replay_us: sums[3],
            segments,
        },
        comp_segs,
        net_segs,
    }
}

/// Streaming aggregator of completed roots' critical paths.
///
/// The engine feeds it one `(root, chain)` pair per completion; the
/// collector never stores chains, only integer aggregates and a bounded
/// per-root breakdown list, so memory stays flat on long runs.
#[derive(Debug, Default)]
pub struct CriticalPathCollector {
    labels: BTreeMap<ExecutorId, Arc<str>>,
    totals: PathTotals,
    components: BTreeMap<Arc<str>, ComponentAgg>,
    edges: BTreeMap<(Arc<str>, Arc<str>), EdgeAgg>,
    node_pairs: BTreeMap<(NodeId, NodeId), NodePairAgg>,
    hop_classes: BTreeMap<&'static str, NodePairAgg>,
    breakdowns: Vec<RootBreakdown>,
    max_breakdowns: usize,
    dropped_breakdowns: u64,
}

impl CriticalPathCollector {
    /// Default cap on retained per-root breakdowns (aggregates keep
    /// counting past it).
    pub const DEFAULT_MAX_BREAKDOWNS: usize = 1 << 18;

    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self {
            max_breakdowns: Self::DEFAULT_MAX_BREAKDOWNS,
            ..Self::default()
        }
    }

    /// Overrides the per-root breakdown retention cap.
    #[must_use]
    pub fn with_max_breakdowns(mut self, cap: usize) -> Self {
        self.max_breakdowns = cap;
        self
    }

    /// Registers a display label (component name) for an executor.
    /// Unlabelled executors render as `exec-N`.
    pub fn set_label(&mut self, executor: ExecutorId, label: &str) {
        self.labels.insert(executor, Arc::from(label));
    }

    fn label_of(&self, executor: ExecutorId) -> Arc<str> {
        self.labels
            .get(&executor)
            .cloned()
            .unwrap_or_else(|| Arc::from(executor.to_string().as_str()))
    }

    /// Folds one completed root into the aggregates.
    ///
    /// `chain` is the span chain of the message whose arrival completed
    /// the root (the critical path); `emit_at`/`completed_at` bound the
    /// measured latency. Equivalent to `absorb(&decompose_root(..))` —
    /// the serial and frame-parallel engine modes literally share this
    /// code path, which is what makes their summaries byte-identical.
    pub fn observe_root(
        &mut self,
        tuple: TupleId,
        emit_at: SimTime,
        completed_at: SimTime,
        chain: &SpanChain,
    ) {
        let partial = decompose_root(tuple, emit_at, completed_at, chain);
        self.absorb(&partial);
    }

    /// Merges one lane-decomposed root into the aggregates. All updates
    /// are integer sums / maxima over ordered maps, so absorbing partials
    /// in root-completion order reproduces [`Self::observe_root`]'s state
    /// exactly, regardless of which worker lane decomposed each chain.
    pub fn absorb(&mut self, partial: &PathPartial) {
        for (executor, kind, micros) in &partial.comp_segs {
            let c = self.components.entry(self.label_of(*executor)).or_default();
            c.segments += 1;
            match kind {
                SpanKind::Queue => c.queue_us += micros,
                _ => c.service_us += micros,
            }
        }
        for net in &partial.net_segs {
            let key = (
                self.label_of(net.from_executor),
                self.label_of(net.executor),
            );
            let e = self.edges.entry(key).or_default();
            e.hops += 1;
            e.network_us += net.micros;
            if net.from_node != net.node {
                e.inter_node_hops += 1;
            }
            let np = self
                .node_pairs
                .entry((net.from_node, net.node))
                .or_default();
            np.hops += 1;
            np.network_us += net.micros;
            let label = net.hop.map_or("unknown", HopClass::label);
            let hc = self.hop_classes.entry(label).or_default();
            hc.hops += 1;
            hc.network_us += net.micros;
        }

        let b = &partial.breakdown;
        self.totals.roots += 1;
        if b.replay_us > 0 {
            self.totals.replayed_roots += 1;
        }
        self.totals.latency_us += b.latency_us;
        self.totals.max_latency_us = self.totals.max_latency_us.max(b.latency_us);
        self.totals.queue_us += b.queue_us;
        self.totals.service_us += b.service_us;
        self.totals.network_us += b.network_us;
        self.totals.replay_us += b.replay_us;

        if self.breakdowns.len() < self.max_breakdowns {
            self.breakdowns.push(*b);
        } else {
            self.dropped_breakdowns += 1;
        }
    }

    /// Grand totals so far.
    #[must_use]
    pub fn totals(&self) -> &PathTotals {
        &self.totals
    }

    /// Retained per-root breakdowns (bounded by the retention cap).
    #[must_use]
    pub fn breakdowns(&self) -> &[RootBreakdown] {
        &self.breakdowns
    }

    /// Breakdowns dropped after the retention cap filled.
    #[must_use]
    pub fn dropped_breakdowns(&self) -> u64 {
        self.dropped_breakdowns
    }

    /// True if no root has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.totals.roots == 0
    }

    /// One deterministic JSON object with totals and every aggregate
    /// table — the flight recorder's `critical_path` payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let t = &self.totals;
        let mut o = ObjectWriter::new();
        o.u64("roots", t.roots)
            .u64("replayed_roots", t.replayed_roots)
            .u64("latency_us", t.latency_us)
            .u64("max_latency_us", t.max_latency_us)
            .u64("queue_us", t.queue_us)
            .u64("service_us", t.service_us)
            .u64("network_us", t.network_us)
            .u64("replay_us", t.replay_us)
            .u64("dropped_breakdowns", self.dropped_breakdowns);

        let mut components = String::from("[");
        for (i, (name, c)) in self.components.iter().enumerate() {
            if i > 0 {
                components.push(',');
            }
            let mut co = ObjectWriter::new();
            co.str("component", name)
                .u64("segments", c.segments)
                .u64("queue_us", c.queue_us)
                .u64("service_us", c.service_us);
            components.push_str(&co.finish());
        }
        components.push(']');
        o.raw("components", &components);

        let mut edges = String::from("[");
        for (i, ((from, to), e)) in self.edges.iter().enumerate() {
            if i > 0 {
                edges.push(',');
            }
            let mut eo = ObjectWriter::new();
            eo.str("from", from)
                .str("to", to)
                .u64("hops", e.hops)
                .u64("network_us", e.network_us)
                .u64("inter_node_hops", e.inter_node_hops);
            edges.push_str(&eo.finish());
        }
        edges.push(']');
        o.raw("edges", &edges);

        let mut pairs = String::from("[");
        for (i, ((from, to), p)) in self.node_pairs.iter().enumerate() {
            if i > 0 {
                pairs.push(',');
            }
            let mut po = ObjectWriter::new();
            po.u64("from", u64::from(from.index()))
                .u64("to", u64::from(to.index()))
                .u64("hops", p.hops)
                .u64("network_us", p.network_us);
            pairs.push_str(&po.finish());
        }
        pairs.push(']');
        o.raw("node_pairs", &pairs);

        let mut classes = String::from("[");
        for (i, (label, h)) in self.hop_classes.iter().enumerate() {
            if i > 0 {
                classes.push(',');
            }
            let mut ho = ObjectWriter::new();
            ho.str("class", label)
                .u64("hops", h.hops)
                .u64("network_us", h.network_us);
            classes.push_str(&ho.finish());
        }
        classes.push(']');
        o.raw("hop_classes", &classes);
        o.finish()
    }

    /// Human-readable summary tables for the CLI's `--spans` output.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let t = &self.totals;
        let mut out = String::new();
        if t.roots == 0 {
            out.push_str("critical path: no completed roots observed\n");
            return out;
        }
        let ms = |us: u64| us as f64 / 1e3;
        let per_root = |us: u64| us as f64 / 1e3 / t.roots as f64;
        let _ = writeln!(
            out,
            "critical path over {} roots (mean latency {:.3} ms, max {:.3} ms)",
            t.roots,
            per_root(t.latency_us),
            ms(t.max_latency_us),
        );
        let measured = t.queue_us + t.service_us + t.network_us;
        let pct = |us: u64| {
            if measured == 0 {
                0.0
            } else {
                100.0 * us as f64 / measured as f64
            }
        };
        let _ = writeln!(
            out,
            "  queue {:.3} ms/root ({:.1}%)  service {:.3} ms/root ({:.1}%)  network {:.3} ms/root ({:.1}%)",
            per_root(t.queue_us),
            pct(t.queue_us),
            per_root(t.service_us),
            pct(t.service_us),
            per_root(t.network_us),
            pct(t.network_us),
        );
        if t.replayed_roots > 0 {
            let _ = writeln!(
                out,
                "  {} replayed roots waited {:.3} ms total in the replay queue",
                t.replayed_roots,
                ms(t.replay_us),
            );
        }

        if !self.components.is_empty() {
            let _ = writeln!(
                out,
                "  {:<18} {:>10} {:>12} {:>12}",
                "component", "segments", "queue(ms)", "service(ms)"
            );
            for (name, c) in &self.components {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>10} {:>12.3} {:>12.3}",
                    name,
                    c.segments,
                    ms(c.queue_us),
                    ms(c.service_us),
                );
            }
        }
        if !self.edges.is_empty() {
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>12} {:>12}",
                "edge", "hops", "network(ms)", "inter-node"
            );
            for ((from, to), e) in &self.edges {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>8} {:>12.3} {:>11.1}%",
                    format!("{from}->{to}"),
                    e.hops,
                    ms(e.network_us),
                    if e.hops == 0 {
                        0.0
                    } else {
                        100.0 * e.inter_node_hops as f64 / e.hops as f64
                    },
                );
            }
        }
        if !self.hop_classes.is_empty() {
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>12}",
                "hop class", "hops", "network(ms)"
            );
            for (label, h) in &self.hop_classes {
                let _ = writeln!(
                    out,
                    "  {:<18} {:>8} {:>12.3}",
                    label,
                    h.hops,
                    ms(h.network_us),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn e(i: u32) -> ExecutorId {
        ExecutorId::new(i)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn chains_share_prefixes_on_fanout() {
        let base = extend(&None, SpanSeg::service(e(0), n(0), 100));
        let left = extend(
            &base,
            SpanSeg::network(e(0), n(0), e(1), n(1), HopClass::InterNode, 500),
        );
        let right = extend(
            &base,
            SpanSeg::network(e(0), n(0), e(2), n(0), HopClass::InterProcess, 120),
        );
        // Both branches point at the same parent link.
        assert!(Arc::ptr_eq(
            left.as_ref().unwrap().parent.as_ref().unwrap(),
            right.as_ref().unwrap().parent.as_ref().unwrap(),
        ));
        assert_eq!(sum_by_kind(&left), [0, 100, 500, 0]);
        assert_eq!(sum_by_kind(&right), [0, 100, 120, 0]);
    }

    #[test]
    fn collector_attributes_segments() {
        let mut c = CriticalPathCollector::new();
        c.set_label(e(0), "spout");
        c.set_label(e(1), "bolt");
        let chain = extend(
            &extend(
                &extend(
                    &None,
                    SpanSeg::network(e(0), n(0), e(1), n(1), HopClass::InterNode, 500),
                ),
                SpanSeg::queue(e(1), n(1), 40),
            ),
            SpanSeg::service(e(1), n(1), 60),
        );
        c.observe_root(
            TupleId::new(7),
            SimTime::from_micros(1_000),
            SimTime::from_micros(1_600),
            &chain,
        );
        let t = c.totals();
        assert_eq!(t.roots, 1);
        assert_eq!(t.latency_us, 600);
        assert_eq!(t.queue_us + t.service_us + t.network_us, 600);
        let b = c.breakdowns()[0];
        assert_eq!(b.queue_us, 40);
        assert_eq!(b.service_us, 60);
        assert_eq!(b.network_us, 500);
        assert_eq!(b.segments, 3);

        let json = parse(&c.to_json()).expect("valid json");
        assert_eq!(json.get("roots").unwrap().as_f64(), Some(1.0));
        let edges = json.get("edges").unwrap().as_array().unwrap();
        assert_eq!(edges[0].get("from").unwrap().as_str(), Some("spout"));
        assert_eq!(edges[0].get("to").unwrap().as_str(), Some("bolt"));
        assert_eq!(edges[0].get("inter_node_hops").unwrap().as_f64(), Some(1.0));
        let classes = json.get("hop_classes").unwrap().as_array().unwrap();
        assert_eq!(
            classes[0].get("class").unwrap().as_str(),
            Some("inter_node")
        );
    }

    #[test]
    fn batched_delivery_fans_out_per_tuple_segments() {
        // Two tuples staged into the same batch at different instants
        // (t=100 and t=150) and delivered together at t=600: the fan-out
        // gives each its own network segment (500 µs and 450 µs), so both
        // chains still telescope to their own emit → completion latency.
        let mut c = CriticalPathCollector::new();
        let service = extend(&None, SpanSeg::service(e(0), n(0), 100));
        let first = extend(
            &service,
            SpanSeg::network(e(0), n(0), e(1), n(1), HopClass::InterNode, 500),
        );
        let second = extend(
            &service,
            SpanSeg::network(e(0), n(0), e(1), n(1), HopClass::InterNode, 450),
        );
        c.observe_root(
            TupleId::new(1),
            SimTime::ZERO,
            SimTime::from_micros(600),
            &first,
        );
        c.observe_root(
            TupleId::new(2),
            SimTime::from_micros(50),
            SimTime::from_micros(600),
            &second,
        );
        let t = c.totals();
        assert_eq!(t.roots, 2);
        assert_eq!(t.latency_us, 600 + 550);
        assert_eq!(t.queue_us + t.service_us + t.network_us, 600 + 550);
        for b in c.breakdowns() {
            assert_eq!(b.queue_us + b.service_us + b.network_us, b.latency_us);
        }
    }

    #[test]
    fn replay_segments_sit_outside_latency() {
        let mut c = CriticalPathCollector::new();
        let chain = extend(
            &extend(&None, SpanSeg::replay(e(0), n(0), 30_000)),
            SpanSeg::service(e(1), n(0), 200),
        );
        c.observe_root(
            TupleId::new(1),
            SimTime::from_micros(100),
            SimTime::from_micros(300),
            &chain,
        );
        let t = c.totals();
        assert_eq!(t.replayed_roots, 1);
        assert_eq!(t.replay_us, 30_000);
        assert_eq!(t.latency_us, 200);
    }

    #[test]
    fn decompose_then_absorb_matches_observe_root() {
        // The frame-parallel engine decomposes chains on worker lanes and
        // absorbs the partials in completion order; the result must be
        // indistinguishable from the serial observe_root path.
        let chain = extend(
            &extend(
                &extend(
                    &extend(&None, SpanSeg::replay(e(0), n(0), 7_000)),
                    SpanSeg::network(e(0), n(0), e(1), n(1), HopClass::InterNode, 500),
                ),
                SpanSeg::queue(e(1), n(1), 40),
            ),
            SpanSeg::service(e(1), n(1), 60),
        );
        let mut serial = CriticalPathCollector::new();
        let mut framed = CriticalPathCollector::new();
        for c in [&mut serial, &mut framed] {
            c.set_label(e(0), "spout");
            c.set_label(e(1), "bolt");
        }
        serial.observe_root(
            TupleId::new(3),
            SimTime::from_micros(1_000),
            SimTime::from_micros(1_600),
            &chain,
        );
        let partial = decompose_root(
            TupleId::new(3),
            SimTime::from_micros(1_000),
            SimTime::from_micros(1_600),
            &chain,
        );
        framed.absorb(&partial);
        assert_eq!(serial.to_json(), framed.to_json());
        assert_eq!(serial.render_summary(), framed.render_summary());
        assert_eq!(serial.breakdowns(), framed.breakdowns());
        assert_eq!(serial.totals(), framed.totals());
    }

    #[test]
    fn breakdown_cap_is_respected() {
        let mut c = CriticalPathCollector::new().with_max_breakdowns(2);
        for i in 0..5 {
            c.observe_root(
                TupleId::new(i),
                SimTime::ZERO,
                SimTime::from_micros(10),
                &None,
            );
        }
        assert_eq!(c.breakdowns().len(), 2);
        assert_eq!(c.dropped_breakdowns(), 3);
        assert_eq!(c.totals().roots, 5);
    }

    #[test]
    fn summary_renders_unlabelled_executors() {
        let mut c = CriticalPathCollector::new();
        let chain = extend(&None, SpanSeg::service(e(9), n(0), 50));
        c.observe_root(
            TupleId::new(0),
            SimTime::ZERO,
            SimTime::from_micros(50),
            &chain,
        );
        let text = c.render_summary();
        assert!(text.contains("exec-9"), "{text}");
        assert!(text.contains("critical path over 1 roots"), "{text}");
    }

    #[test]
    fn empty_collector_summary() {
        let c = CriticalPathCollector::new();
        assert!(c.is_empty());
        assert!(c.render_summary().contains("no completed roots"));
        assert!(parse(&c.to_json()).is_some());
    }
}
