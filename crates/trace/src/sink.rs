//! Trace sinks: where filtered events go.
//!
//! A sink receives `(virtual time, event)` pairs that already passed the
//! observer's category filter and sampling. Sinks are deliberately dumb
//! — no filtering logic of their own — so that a given observer
//! configuration produces the same event stream regardless of sink.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::{self, Write};
use tstorm_types::SimTime;

/// A destination for trace events.
pub trait TraceSink: Send {
    /// Records one event at virtual time `at`.
    fn record(&mut self, at: SimTime, event: &TraceEvent);

    /// Records an event whose JSONL line was already rendered elsewhere
    /// (by an engine worker lane). `line` is exactly what
    /// [`TraceEvent::to_jsonl`] would produce for `(at, event)`. The
    /// default ignores the line and delegates to [`Self::record`], so
    /// sinks that store events (ring buffers) behave identically in both
    /// engine modes; line-oriented sinks override this to skip the
    /// re-render.
    fn record_rendered(&mut self, at: SimTime, event: &TraceEvent, line: &str) {
        let _ = line;
        self.record(at, event);
    }

    /// Flushes any buffered output. Default: no-op.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything. Useful as an explicit "trace plumbing on, output
/// off" configuration in tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _at: SimTime, _event: &TraceEvent) {}
}

/// Keeps the last `capacity` events in memory — a flight recorder for
/// post-mortem inspection in tests and interactive debugging.
#[derive(Debug)]
pub struct RingBufferSink {
    buf: VecDeque<(SimTime, TraceEvent)>,
    capacity: usize,
    /// Total events ever offered, including evicted ones.
    seen: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be non-zero");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.buf.iter()
    }

    /// Number of events retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered over the sink's lifetime (≥ `len()`).
    #[must_use]
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((at, event.clone()));
        self.seen += 1;
    }
}

/// Streams events as JSON Lines to any writer (file, `Vec<u8>`, …).
///
/// One event per line, rendered by [`TraceEvent::to_jsonl`]; the output
/// for a fixed event stream is byte-deterministic.
#[derive(Debug)]
pub struct JsonlWriter<W: Write + Send> {
    out: W,
    lines: u64,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wraps a writer. Callers streaming to disk should pass a
    /// `BufWriter` — this type does not buffer.
    pub fn new(out: W) -> Self {
        Self { out, lines: 0 }
    }

    /// Number of lines written so far.
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }

    /// Borrows the inner writer, e.g. to inspect an in-memory buffer
    /// while the sink stays installed.
    pub fn get_ref(&self) -> &W {
        &self.out
    }
}

impl<W: Write + Send> TraceSink for JsonlWriter<W> {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        let line = event.to_jsonl(at);
        self.record_rendered(at, event, &line);
    }

    fn record_rendered(&mut self, at: SimTime, event: &TraceEvent, line: &str) {
        let _ = (at, event);
        // Trace output is best-effort: a full disk must not abort the
        // simulation, so write errors are swallowed after first report.
        if writeln!(self.out, "{line}").is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(tuple: u64) -> TraceEvent {
        TraceEvent::Ack { tuple }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(SimTime::from_micros(i), &ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 5);
        let tuples: Vec<u64> = ring
            .events()
            .map(|(_, e)| match e {
                TraceEvent::Ack { tuple } => *tuple,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tuples, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_event() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record(SimTime::from_micros(10), &ev(1));
        w.record(SimTime::from_micros(20), &ev(2));
        assert_eq!(w.lines_written(), 2);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"t":10,"type":"ack","tuple":1}"#);
        assert_eq!(lines[1], r#"{"t":20,"type":"ack","tuple":2}"#);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_ring_panics() {
        let _ = RingBufferSink::new(0);
    }
}
