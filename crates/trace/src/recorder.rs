//! The run flight recorder: a versioned JSONL artifact of windowed
//! cluster state, scheduler decisions and control-plane events.
//!
//! A recording is a sequence of JSON objects, one per line. The first
//! line is always a `meta` object carrying the format version and run
//! provenance (scenario, seed, configuration); every later line has a
//! `type` discriminator and a `t` virtual timestamp in microseconds:
//!
//! ```text
//! {"type":"meta","v":1,"scenario":"wordcount","seed":42,...}
//! {"type":"window","t":20000000,"executors":[...],"nodes":[...],...}
//! {"type":"decision","t":20000000,"epoch":1,"algorithm":"t-storm",...}
//! {"type":"control","t":20000000,"event":"schedule_published",...}
//! {"type":"critical_path","t":120000000,"roots":9000,...}
//! ```
//!
//! The writer never consults wall-clock time or randomness; same-seed
//! runs produce byte-identical recordings. [`parse_recording`] is the
//! reading half used by the `inspect` tool and tests.

use crate::json::{parse, JsonValue, ObjectWriter};
use std::io::{self, Write};
use tstorm_types::SimTime;

/// Current recording format version, written into the `meta` line.
pub const FLIGHT_RECORDER_VERSION: u64 = 1;

/// Streams flight-recorder lines to any writer.
#[derive(Debug)]
pub struct FlightRecorder<W: Write + Send> {
    out: W,
    lines: u64,
}

impl<W: Write + Send> FlightRecorder<W> {
    /// Wraps a writer; callers streaming to disk should pass a
    /// `BufWriter`.
    pub fn new(out: W) -> Self {
        Self { out, lines: 0 }
    }

    /// Writes the leading `meta` line. `fill` adds provenance fields
    /// after the fixed `type`/`v` prefix.
    pub fn meta(&mut self, fill: impl FnOnce(&mut ObjectWriter)) {
        let mut o = ObjectWriter::new();
        o.str("type", "meta").u64("v", FLIGHT_RECORDER_VERSION);
        fill(&mut o);
        self.write_line(&o.finish());
    }

    /// Writes one timestamped line of kind `kind` (`window`,
    /// `decision`, `control`, `critical_path`, …).
    pub fn line(&mut self, kind: &str, at: SimTime, fill: impl FnOnce(&mut ObjectWriter)) {
        let mut o = ObjectWriter::new();
        o.str("type", kind).u64("t", at.as_micros());
        fill(&mut o);
        self.write_line(&o.finish());
    }

    fn write_line(&mut self, line: &str) {
        // Recording is best-effort, like the trace sinks: a full disk
        // must not abort the simulation.
        if writeln!(self.out, "{line}").is_ok() {
            self.lines += 1;
        }
    }

    /// Lines written so far.
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A parsed recording: the `meta` object plus every later line in file
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedRun {
    /// The leading `meta` object.
    pub meta: JsonValue,
    /// Every subsequent line, in order.
    pub lines: Vec<JsonValue>,
}

impl RecordedRun {
    /// All lines whose `type` field equals `kind`, in order.
    #[must_use]
    pub fn lines_of(&self, kind: &str) -> Vec<&JsonValue> {
        self.lines
            .iter()
            .filter(|l| l.get("type").and_then(JsonValue::as_str) == Some(kind))
            .collect()
    }
}

/// Parses a flight recording, validating the leading `meta` line and
/// the format version.
///
/// # Errors
///
/// Returns a human-readable message when the input is empty, is not
/// JSONL, does not start with a `meta` line, or has an unsupported
/// version.
pub fn parse_recording(text: &str) -> Result<RecordedRun, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, first)) = lines.next() else {
        return Err("no recording: the file is empty".to_owned());
    };
    let meta = parse(first).ok_or("no recording: first line is not valid JSON".to_owned())?;
    if meta.get("type").and_then(JsonValue::as_str) != Some("meta") {
        return Err("no recording: first line is not a meta object".to_owned());
    }
    match meta.get("v").and_then(JsonValue::as_f64) {
        Some(v) if v == FLIGHT_RECORDER_VERSION as f64 => {}
        Some(v) => return Err(format!("unsupported recording version {v}")),
        None => return Err("no recording: meta line lacks a version".to_owned()),
    }
    let mut parsed = Vec::new();
    for (idx, line) in lines {
        let value = parse(line).ok_or_else(|| format!("line {}: not valid JSON", idx + 1))?;
        parsed.push(value);
    }
    Ok(RecordedRun {
        meta,
        lines: parsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_a_recording() {
        let mut rec = FlightRecorder::new(Vec::new());
        rec.meta(|o| {
            o.str("scenario", "wordcount").u64("seed", 42);
        });
        rec.line("window", SimTime::from_secs(20), |o| {
            o.u64("queue_depth", 3);
        });
        rec.line("control", SimTime::from_secs(21), |o| {
            o.str("event", "schedule_published");
        });
        assert_eq!(rec.lines_written(), 3);
        let bytes = rec.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with(r#"{"type":"meta","v":1,"scenario":"wordcount""#));

        let run = parse_recording(&text).expect("parses");
        assert_eq!(run.meta.get("seed").unwrap().as_f64(), Some(42.0));
        assert_eq!(run.lines.len(), 2);
        assert_eq!(run.lines_of("window").len(), 1);
        assert_eq!(
            run.lines_of("window")[0].get("t").unwrap().as_f64(),
            Some(20_000_000.0)
        );
        assert!(run.lines_of("decision").is_empty());
    }

    #[test]
    fn rejects_empty_and_headerless_input() {
        assert!(parse_recording("").unwrap_err().contains("no recording"));
        assert!(parse_recording("\n\n")
            .unwrap_err()
            .contains("no recording"));
        assert!(parse_recording("{\"type\":\"window\",\"t\":1}")
            .unwrap_err()
            .contains("not a meta object"));
        assert!(parse_recording("garbage")
            .unwrap_err()
            .contains("not valid JSON"));
    }

    #[test]
    fn rejects_unsupported_versions() {
        let err = parse_recording(r#"{"type":"meta","v":99}"#).unwrap_err();
        assert!(err.contains("unsupported recording version"), "{err}");
        let err = parse_recording(r#"{"type":"meta"}"#).unwrap_err();
        assert!(err.contains("lacks a version"), "{err}");
    }

    #[test]
    fn reports_bad_line_numbers() {
        let text = "{\"type\":\"meta\",\"v\":1}\n{oops}\n";
        let err = parse_recording(text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
