//! The structured trace event vocabulary.
//!
//! Every observable state transition in the simulated T-Storm cluster is
//! one [`TraceEvent`] variant. Events carry plain identifiers (executor
//! indices, node indices, tuple ids) rather than references into
//! simulator state, so a sink can buffer or serialise them without
//! lifetime entanglement.
//!
//! Rendering to JSONL is part of this module so that the byte layout of
//! a trace line is defined in exactly one place: field order is fixed,
//! floats use Rust's shortest round-trip formatting, and nothing in a
//! line depends on wall-clock time or hash-map iteration order. Two runs
//! with the same seed therefore produce byte-identical trace files.

use crate::json::ObjectWriter;
use tstorm_types::SimTime;

/// Locality class of a tuple transfer, mirroring the paper's three-level
/// cost model (§III): intra-executor/worker hops are nearly free,
/// inter-process hops pay IPC, inter-node hops pay the network.
///
/// This is the trace layer's own copy of the classification: the
/// simulator depends on this crate, not the other way around, so the
/// sim maps its internal hop type into this one when emitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopClass {
    /// Producer and consumer share a worker (JVM) — in-memory hand-off.
    IntraWorker,
    /// Same node, different worker process — local IPC.
    InterProcess,
    /// Different nodes — pays full network latency and bandwidth.
    InterNode,
}

impl HopClass {
    /// Stable lower-case label used in JSONL output and metric labels.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HopClass::IntraWorker => "intra_worker",
            HopClass::InterProcess => "inter_process",
            HopClass::InterNode => "inter_node",
        }
    }
}

/// Coarse event category, used for sink filtering and sampling.
///
/// High-frequency data-plane categories (`Tuple`, `Queue`, `Process`)
/// are eligible for 1-in-N sampling; control-plane categories are
/// always recorded when their category passes the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventCategory {
    /// Tuple lifecycle: emit, transfer, ack, complete, timeout, replay.
    Tuple,
    /// Executor receive-queue occupancy changes.
    Queue,
    /// Executor processing start/finish.
    Process,
    /// Worker/assignment lifecycle.
    Worker,
    /// Scheduler and control-plane decisions.
    Control,
}

impl EventCategory {
    /// All categories, in filter-string order.
    pub const ALL: [EventCategory; 5] = [
        EventCategory::Tuple,
        EventCategory::Queue,
        EventCategory::Process,
        EventCategory::Worker,
        EventCategory::Control,
    ];

    /// Stable lower-case name (also the `--trace-filter` token).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventCategory::Tuple => "tuple",
            EventCategory::Queue => "queue",
            EventCategory::Process => "process",
            EventCategory::Worker => "worker",
            EventCategory::Control => "control",
        }
    }

    /// Parses a filter token (case-insensitive).
    #[must_use]
    pub fn parse(token: &str) -> Option<EventCategory> {
        let t = token.trim().to_ascii_lowercase();
        Self::ALL.into_iter().find(|c| c.name() == t)
    }

    /// True for high-frequency data-plane categories that 1-in-N
    /// sampling applies to.
    #[must_use]
    pub fn is_sampled(self) -> bool {
        matches!(
            self,
            EventCategory::Tuple | EventCategory::Queue | EventCategory::Process
        )
    }
}

/// One structured trace event.
///
/// Identifier conventions: `executor`/`from_executor`/`to_executor` are
/// global executor indices, `node` is a cluster node index, `worker` is
/// a worker-slot index, `tuple` is the root tuple id the event belongs
/// to (the anchor for at-least-once tracking).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A spout finished emitting a new root tuple.
    TupleEmit {
        /// Root tuple id.
        tuple: u64,
        /// Emitting spout executor.
        executor: u32,
    },
    /// A tuple (root or derived) was sent between two executors.
    TupleTransfer {
        /// Root tuple id.
        tuple: u64,
        /// Producing executor.
        from_executor: u32,
        /// Consuming executor.
        to_executor: u32,
        /// Locality class of the hop.
        hop: HopClass,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A tuple entered an executor's receive queue.
    QueueEnter {
        /// Root tuple id.
        tuple: u64,
        /// Queue owner.
        executor: u32,
        /// Queue depth after the push.
        depth: u64,
    },
    /// A tuple left an executor's receive queue to start processing.
    QueueLeave {
        /// Root tuple id.
        tuple: u64,
        /// Queue owner.
        executor: u32,
        /// Queue depth after the pop.
        depth: u64,
    },
    /// An executor began processing a tuple.
    ProcessStart {
        /// Root tuple id.
        tuple: u64,
        /// Processing executor.
        executor: u32,
    },
    /// An executor finished processing a tuple.
    ProcessDone {
        /// Root tuple id.
        tuple: u64,
        /// Processing executor.
        executor: u32,
        /// Virtual service time spent, microseconds.
        service_us: u64,
    },
    /// The acker XOR-retired one tuple edge of a tree.
    Ack {
        /// Root tuple id.
        tuple: u64,
    },
    /// A root tuple's tree fully completed.
    Complete {
        /// Root tuple id.
        tuple: u64,
        /// End-to-end completion latency in milliseconds.
        latency_ms: f64,
    },
    /// A root tuple's message timeout expired before completion.
    Timeout {
        /// Root tuple id.
        tuple: u64,
    },
    /// A timed-out root tuple was replayed from the spout.
    Replay {
        /// Root tuple id (of the original emission).
        tuple: u64,
    },
    /// A new assignment version was applied to the cluster.
    AssignmentApplied {
        /// Assignment version number.
        version: u64,
        /// Number of executors whose slot changed vs. the previous
        /// assignment (the diff size — 0 for the initial assignment
        /// means a full rollout is counted in `added`).
        moved: u64,
        /// Executors newly assigned.
        added: u64,
        /// Executors removed from the assignment.
        removed: u64,
    },
    /// A worker process started on a node.
    WorkerStart {
        /// Host node index.
        node: u32,
        /// Worker slot index on that node.
        worker: u32,
    },
    /// A worker process stopped (relocation or failure).
    WorkerStop {
        /// Host node index.
        node: u32,
        /// Worker slot index on that node.
        worker: u32,
    },
    /// The scheduler produced a new candidate schedule.
    ScheduleGenerated {
        /// Scheduler algorithm name (e.g. `tstorm`, `round_robin`).
        algorithm: String,
        /// Predicted inter-node traffic of the schedule (tuples/s).
        inter_node_traffic: f64,
        /// Predicted inter-process traffic of the schedule (tuples/s).
        inter_process_traffic: f64,
        /// Wall-clock scheduling time in microseconds. `None` unless
        /// wall-clock capture was explicitly enabled: the field is
        /// nondeterministic, and the default keeps trace files
        /// byte-identical across same-seed runs (the value always
        /// reaches the metrics histogram regardless).
        elapsed_us: Option<u64>,
    },
    /// The load monitor flagged a node as overloaded.
    OverloadDetected {
        /// Overloaded node index.
        node: u32,
        /// Observed CPU utilisation (0..=1 scale, may exceed 1).
        utilisation: f64,
    },
    /// The active scheduler implementation was hot-swapped.
    SchedulerSwapped {
        /// Name of the scheduler now active.
        to: String,
    },
    /// The traffic-balance weight γ was changed at runtime.
    GammaChanged {
        /// New γ value.
        gamma: f64,
    },
    /// A root tuple permanently failed: it timed out and cannot be
    /// replayed (replay disabled or the replay cap was exhausted).
    TupleFailed {
        /// Root tuple id.
        tuple: u64,
        /// Replays already attempted for this payload.
        replays: u64,
    },
    /// A scheduled fault from the fault plan fired.
    FaultInjected {
        /// Fault kind (`worker_crash`, `node_crash`, `nic_slowdown`,
        /// `nimbus_crash`, `heartbeat_loss`, `node_restart`,
        /// `nic_restored`, `nimbus_restored`, `heartbeat_restored`).
        kind: String,
        /// Targeted node index; `None` for master-level faults
        /// (`nimbus_crash`, `nimbus_restored`).
        node: Option<u32>,
        /// Targeted worker slot, for worker-level faults.
        worker: Option<u32>,
    },
    /// The control plane re-placed executors orphaned by a fault.
    ExecutorsReassigned {
        /// Assignment version carrying the recovery placement.
        version: u64,
        /// Executors moved or newly placed by the recovery assignment.
        count: u64,
    },
    /// First tuple completion after a recovery placement — the fault is
    /// healed end to end.
    RecoveryComplete {
        /// Fault-to-first-completion latency in milliseconds.
        latency_ms: f64,
    },
    /// A supervisor's periodic heartbeat reached Nimbus.
    HeartbeatSent {
        /// Heartbeating node.
        node: u32,
    },
    /// A supervisor fetched a schedule epoch it had not applied yet.
    SupervisorFetch {
        /// Fetching node.
        node: u32,
        /// The schedule-store epoch picked up.
        epoch: u64,
    },
    /// A supervisor finished applying its slice of a schedule epoch.
    EpochApplied {
        /// Applying node.
        node: u32,
        /// The epoch now in force on that node.
        epoch: u64,
    },
    /// Nimbus missed enough consecutive heartbeats to declare the node
    /// dead and exclude it from scheduling.
    NodeDeclaredDead {
        /// The node declared dead.
        node: u32,
        /// Consecutive heartbeat periods missed at declaration time.
        missed: u64,
    },
    /// A declared-dead node's heartbeats resumed: Nimbus reconciles it
    /// back into the schedulable set.
    NodeReconciled {
        /// The reconciled node.
        node: u32,
        /// True when the node never actually went down — the declaration
        /// (and any reassignment made under it) was a false positive.
        false_positive: bool,
    },
}

impl TraceEvent {
    /// Stable event-type name used in the JSONL `type` field.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            TraceEvent::TupleEmit { .. } => "tuple_emit",
            TraceEvent::TupleTransfer { .. } => "tuple_transfer",
            TraceEvent::QueueEnter { .. } => "queue_enter",
            TraceEvent::QueueLeave { .. } => "queue_leave",
            TraceEvent::ProcessStart { .. } => "process_start",
            TraceEvent::ProcessDone { .. } => "process_done",
            TraceEvent::Ack { .. } => "ack",
            TraceEvent::Complete { .. } => "complete",
            TraceEvent::Timeout { .. } => "timeout",
            TraceEvent::Replay { .. } => "replay",
            TraceEvent::AssignmentApplied { .. } => "assignment_applied",
            TraceEvent::WorkerStart { .. } => "worker_start",
            TraceEvent::WorkerStop { .. } => "worker_stop",
            TraceEvent::ScheduleGenerated { .. } => "schedule_generated",
            TraceEvent::OverloadDetected { .. } => "overload_detected",
            TraceEvent::SchedulerSwapped { .. } => "scheduler_swapped",
            TraceEvent::GammaChanged { .. } => "gamma_changed",
            TraceEvent::TupleFailed { .. } => "tuple_failed",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::ExecutorsReassigned { .. } => "executors_reassigned",
            TraceEvent::RecoveryComplete { .. } => "recovery_complete",
            TraceEvent::HeartbeatSent { .. } => "heartbeat",
            TraceEvent::SupervisorFetch { .. } => "supervisor_fetch",
            TraceEvent::EpochApplied { .. } => "epoch_applied",
            TraceEvent::NodeDeclaredDead { .. } => "node_declared_dead",
            TraceEvent::NodeReconciled { .. } => "node_reconciled",
        }
    }

    /// The category this event belongs to.
    #[must_use]
    pub fn category(&self) -> EventCategory {
        match self {
            TraceEvent::TupleEmit { .. }
            | TraceEvent::TupleTransfer { .. }
            | TraceEvent::Ack { .. }
            | TraceEvent::Complete { .. }
            | TraceEvent::Timeout { .. }
            | TraceEvent::Replay { .. }
            | TraceEvent::TupleFailed { .. } => EventCategory::Tuple,
            TraceEvent::QueueEnter { .. } | TraceEvent::QueueLeave { .. } => EventCategory::Queue,
            TraceEvent::ProcessStart { .. } | TraceEvent::ProcessDone { .. } => {
                EventCategory::Process
            }
            TraceEvent::AssignmentApplied { .. }
            | TraceEvent::WorkerStart { .. }
            | TraceEvent::WorkerStop { .. } => EventCategory::Worker,
            TraceEvent::ScheduleGenerated { .. }
            | TraceEvent::OverloadDetected { .. }
            | TraceEvent::SchedulerSwapped { .. }
            | TraceEvent::GammaChanged { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::ExecutorsReassigned { .. }
            | TraceEvent::RecoveryComplete { .. }
            | TraceEvent::HeartbeatSent { .. }
            | TraceEvent::SupervisorFetch { .. }
            | TraceEvent::EpochApplied { .. }
            | TraceEvent::NodeDeclaredDead { .. }
            | TraceEvent::NodeReconciled { .. } => EventCategory::Control,
        }
    }

    /// Deterministic partition key for the engine's frame-parallel
    /// rendering lanes: the event's node/executor affinity where it has
    /// one, else its tuple id, else 0. Only load balance depends on this
    /// value — the merged output is ordered by emission sequence, so any
    /// key yields byte-identical traces.
    #[must_use]
    pub fn lane_key(&self) -> u64 {
        match self {
            TraceEvent::TupleEmit { executor, .. }
            | TraceEvent::QueueEnter { executor, .. }
            | TraceEvent::QueueLeave { executor, .. }
            | TraceEvent::ProcessStart { executor, .. }
            | TraceEvent::ProcessDone { executor, .. } => u64::from(*executor),
            TraceEvent::TupleTransfer { to_executor, .. } => u64::from(*to_executor),
            TraceEvent::Ack { tuple }
            | TraceEvent::Complete { tuple, .. }
            | TraceEvent::Timeout { tuple }
            | TraceEvent::Replay { tuple }
            | TraceEvent::TupleFailed { tuple, .. } => *tuple,
            TraceEvent::WorkerStart { node, .. }
            | TraceEvent::WorkerStop { node, .. }
            | TraceEvent::OverloadDetected { node, .. }
            | TraceEvent::HeartbeatSent { node }
            | TraceEvent::SupervisorFetch { node, .. }
            | TraceEvent::EpochApplied { node, .. }
            | TraceEvent::NodeDeclaredDead { node, .. }
            | TraceEvent::NodeReconciled { node, .. } => u64::from(*node),
            TraceEvent::FaultInjected { node, .. } => u64::from(node.unwrap_or(0)),
            TraceEvent::AssignmentApplied { .. }
            | TraceEvent::ScheduleGenerated { .. }
            | TraceEvent::SchedulerSwapped { .. }
            | TraceEvent::GammaChanged { .. }
            | TraceEvent::ExecutorsReassigned { .. }
            | TraceEvent::RecoveryComplete { .. } => 0,
        }
    }

    /// Renders one JSONL line (without trailing newline).
    ///
    /// Field order is fixed: `t` (virtual time, µs), `type`, then the
    /// variant's payload fields in declaration order.
    #[must_use]
    pub fn to_jsonl(&self, at: SimTime) -> String {
        let mut o = ObjectWriter::new();
        o.u64("t", at.as_micros()).str("type", self.type_name());
        match self {
            TraceEvent::TupleEmit { tuple, executor } => {
                o.u64("tuple", *tuple).u64("executor", u64::from(*executor));
            }
            TraceEvent::TupleTransfer {
                tuple,
                from_executor,
                to_executor,
                hop,
                bytes,
            } => {
                o.u64("tuple", *tuple)
                    .u64("from", u64::from(*from_executor))
                    .u64("to", u64::from(*to_executor))
                    .str("hop", hop.label())
                    .u64("bytes", *bytes);
            }
            TraceEvent::QueueEnter {
                tuple,
                executor,
                depth,
            }
            | TraceEvent::QueueLeave {
                tuple,
                executor,
                depth,
            } => {
                o.u64("tuple", *tuple)
                    .u64("executor", u64::from(*executor))
                    .u64("depth", *depth);
            }
            TraceEvent::ProcessStart { tuple, executor } => {
                o.u64("tuple", *tuple).u64("executor", u64::from(*executor));
            }
            TraceEvent::ProcessDone {
                tuple,
                executor,
                service_us,
            } => {
                o.u64("tuple", *tuple)
                    .u64("executor", u64::from(*executor))
                    .u64("service_us", *service_us);
            }
            TraceEvent::Ack { tuple }
            | TraceEvent::Timeout { tuple }
            | TraceEvent::Replay { tuple } => {
                o.u64("tuple", *tuple);
            }
            TraceEvent::Complete { tuple, latency_ms } => {
                o.u64("tuple", *tuple).f64("latency_ms", *latency_ms);
            }
            TraceEvent::AssignmentApplied {
                version,
                moved,
                added,
                removed,
            } => {
                o.u64("version", *version)
                    .u64("moved", *moved)
                    .u64("added", *added)
                    .u64("removed", *removed);
            }
            TraceEvent::WorkerStart { node, worker } | TraceEvent::WorkerStop { node, worker } => {
                o.u64("node", u64::from(*node))
                    .u64("worker", u64::from(*worker));
            }
            TraceEvent::ScheduleGenerated {
                algorithm,
                inter_node_traffic,
                inter_process_traffic,
                elapsed_us,
            } => {
                o.str("algorithm", algorithm)
                    .f64("inter_node_traffic", *inter_node_traffic)
                    .f64("inter_process_traffic", *inter_process_traffic);
                if let Some(us) = elapsed_us {
                    o.u64("elapsed_us", *us);
                }
            }
            TraceEvent::OverloadDetected { node, utilisation } => {
                o.u64("node", u64::from(*node))
                    .f64("utilisation", *utilisation);
            }
            TraceEvent::SchedulerSwapped { to } => {
                o.str("to", to);
            }
            TraceEvent::GammaChanged { gamma } => {
                o.f64("gamma", *gamma);
            }
            TraceEvent::TupleFailed { tuple, replays } => {
                o.u64("tuple", *tuple).u64("replays", *replays);
            }
            TraceEvent::FaultInjected { kind, node, worker } => {
                o.str("kind", kind);
                if let Some(n) = node {
                    o.u64("node", u64::from(*n));
                }
                if let Some(w) = worker {
                    o.u64("worker", u64::from(*w));
                }
            }
            TraceEvent::ExecutorsReassigned { version, count } => {
                o.u64("version", *version).u64("count", *count);
            }
            TraceEvent::RecoveryComplete { latency_ms } => {
                o.f64("latency_ms", *latency_ms);
            }
            TraceEvent::HeartbeatSent { node } => {
                o.u64("node", u64::from(*node));
            }
            TraceEvent::SupervisorFetch { node, epoch }
            | TraceEvent::EpochApplied { node, epoch } => {
                o.u64("node", u64::from(*node)).u64("epoch", *epoch);
            }
            TraceEvent::NodeDeclaredDead { node, missed } => {
                o.u64("node", u64::from(*node)).u64("missed", *missed);
            }
            TraceEvent::NodeReconciled {
                node,
                false_positive,
            } => {
                o.u64("node", u64::from(*node)).raw(
                    "false_positive",
                    if *false_positive { "true" } else { "false" },
                );
            }
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn every_category_token_round_trips() {
        for c in EventCategory::ALL {
            assert_eq!(EventCategory::parse(c.name()), Some(c));
            assert_eq!(EventCategory::parse(&c.name().to_uppercase()), Some(c));
        }
        assert_eq!(EventCategory::parse("bogus"), None);
    }

    #[test]
    fn jsonl_lines_parse_and_carry_fields() {
        let at = SimTime::from_millis(1500);
        let ev = TraceEvent::TupleTransfer {
            tuple: 7,
            from_executor: 2,
            to_executor: 9,
            hop: HopClass::InterNode,
            bytes: 128,
        };
        let line = ev.to_jsonl(at);
        let v = parse(&line).expect("valid JSON");
        assert_eq!(v.get("t").unwrap().as_f64(), Some(1_500_000.0));
        assert_eq!(v.get("type").unwrap().as_str(), Some("tuple_transfer"));
        assert_eq!(v.get("hop").unwrap().as_str(), Some("inter_node"));
        assert_eq!(v.get("bytes").unwrap().as_f64(), Some(128.0));
    }

    #[test]
    fn elapsed_us_absent_by_default() {
        let ev = TraceEvent::ScheduleGenerated {
            algorithm: "tstorm".into(),
            inter_node_traffic: 10.5,
            inter_process_traffic: 3.25,
            elapsed_us: None,
        };
        let line = ev.to_jsonl(SimTime::ZERO);
        assert!(!line.contains("elapsed_us"), "{line}");
        let with = TraceEvent::ScheduleGenerated {
            algorithm: "tstorm".into(),
            inter_node_traffic: 10.5,
            inter_process_traffic: 3.25,
            elapsed_us: Some(42),
        };
        assert!(with.to_jsonl(SimTime::ZERO).contains("\"elapsed_us\":42"));
    }

    #[test]
    fn fault_events_serialise_with_fixed_fields() {
        let ev = TraceEvent::FaultInjected {
            kind: "node_crash".into(),
            node: Some(3),
            worker: None,
        };
        let line = ev.to_jsonl(SimTime::from_secs(400));
        assert_eq!(
            line,
            "{\"t\":400000000,\"type\":\"fault_injected\",\"kind\":\"node_crash\",\"node\":3}"
        );
        assert_eq!(ev.category(), EventCategory::Control);

        let ev = TraceEvent::FaultInjected {
            kind: "worker_crash".into(),
            node: Some(1),
            worker: Some(0),
        };
        assert!(ev.to_jsonl(SimTime::ZERO).contains("\"worker\":0"));

        // Master-level faults carry no node field at all.
        let ev = TraceEvent::FaultInjected {
            kind: "nimbus_crash".into(),
            node: None,
            worker: None,
        };
        let line = ev.to_jsonl(SimTime::from_secs(100));
        assert_eq!(
            line,
            "{\"t\":100000000,\"type\":\"fault_injected\",\"kind\":\"nimbus_crash\"}"
        );

        let ev = TraceEvent::ExecutorsReassigned {
            version: 4,
            count: 6,
        };
        let v = parse(&ev.to_jsonl(SimTime::ZERO)).expect("valid");
        assert_eq!(v.get("count").unwrap().as_f64(), Some(6.0));
        assert_eq!(ev.category(), EventCategory::Control);

        let ev = TraceEvent::RecoveryComplete { latency_ms: 1234.5 };
        assert!(ev.to_jsonl(SimTime::ZERO).contains("\"latency_ms\":1234.5"));

        let ev = TraceEvent::TupleFailed {
            tuple: 9,
            replays: 3,
        };
        assert_eq!(ev.category(), EventCategory::Tuple);
        assert!(ev.to_jsonl(SimTime::ZERO).contains("\"replays\":3"));
    }

    #[test]
    fn control_plane_events_serialise_with_fixed_fields() {
        let ev = TraceEvent::HeartbeatSent { node: 4 };
        assert_eq!(
            ev.to_jsonl(SimTime::from_secs(5)),
            "{\"t\":5000000,\"type\":\"heartbeat\",\"node\":4}"
        );
        assert_eq!(ev.category(), EventCategory::Control);

        let ev = TraceEvent::SupervisorFetch { node: 2, epoch: 7 };
        assert_eq!(
            ev.to_jsonl(SimTime::ZERO),
            "{\"t\":0,\"type\":\"supervisor_fetch\",\"node\":2,\"epoch\":7}"
        );

        let ev = TraceEvent::EpochApplied { node: 2, epoch: 7 };
        assert!(ev.to_jsonl(SimTime::ZERO).contains("\"epoch\":7"));
        assert_eq!(ev.category(), EventCategory::Control);

        let ev = TraceEvent::NodeDeclaredDead { node: 3, missed: 3 };
        assert_eq!(
            ev.to_jsonl(SimTime::ZERO),
            "{\"t\":0,\"type\":\"node_declared_dead\",\"node\":3,\"missed\":3}"
        );

        let ev = TraceEvent::NodeReconciled {
            node: 3,
            false_positive: true,
        };
        assert_eq!(
            ev.to_jsonl(SimTime::ZERO),
            "{\"t\":0,\"type\":\"node_reconciled\",\"node\":3,\"false_positive\":true}"
        );
        assert!(!ev.category().is_sampled(), "control events never sampled");
    }

    #[test]
    fn categories_match_sampling_policy() {
        assert!(TraceEvent::Ack { tuple: 1 }.category().is_sampled());
        assert!(!TraceEvent::GammaChanged { gamma: 0.5 }
            .category()
            .is_sampled());
        assert_eq!(
            TraceEvent::WorkerStart { node: 0, worker: 0 }.category(),
            EventCategory::Worker
        );
    }
}
