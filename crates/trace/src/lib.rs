//! Structured event tracing and a simulator-wide metrics registry for
//! the T-Storm reproduction.
//!
//! Two orthogonal facilities behind one handle, the [`Observer`]:
//!
//! - **Event tracing** — every observable state transition in the
//!   simulated cluster (tuple lifecycle, queue occupancy, processing,
//!   assignment changes, scheduler decisions) is a [`TraceEvent`].
//!   Events flow through a category [`TraceFilter`] and optional 1-in-N
//!   sampling of the high-frequency data-plane categories into pluggable
//!   [`TraceSink`]s: a JSON Lines stream ([`JsonlWriter`]), an in-memory
//!   flight recorder ([`RingBufferSink`]), or nothing ([`NullSink`]).
//! - **Metrics** — instrumentation sites update labelled counter, gauge,
//!   and histogram families in a [`MetricsRegistry`], exported in the
//!   Prometheus text format or as a JSON dump.
//!
//! The disabled observer ([`Observer::disabled`]) costs one pointer
//! check per call site and constructs nothing, so an untraced simulation
//! runs byte-identically to a build without instrumentation. An enabled
//! observer never consults wall-clock time or randomness (the lone
//! exception, scheduler wall time, is opt-in per event and off by
//! default), so same-seed runs produce byte-identical JSONL traces.
//!
//! ```
//! use tstorm_trace::{Observer, RingBufferSink, SharedSink, TraceEvent};
//! use tstorm_types::SimTime;
//!
//! let ring = SharedSink::new(RingBufferSink::new(1024));
//! let handle = ring.handle();
//! let obs = Observer::builder().sink(Box::new(ring)).build();
//!
//! obs.emit_with(SimTime::from_millis(5), || TraceEvent::Complete {
//!     tuple: 1,
//!     latency_ms: 4.2,
//! });
//! obs.metrics(|m| m.inc_counter("tstorm_tuples_completed_total", "done", &[], 1));
//!
//! assert_eq!(handle.with(|r| r.len()), 1);
//! assert!(obs.render_prometheus().unwrap().contains("tstorm_tuples_completed_total 1"));
//! ```

pub mod event;
pub mod json;
pub mod observer;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod span;

pub use event::{EventCategory, HopClass, TraceEvent};
pub use json::JsonValue;
pub use observer::{Observer, ObserverBuilder, SharedSink, TraceFilter};
pub use recorder::{parse_recording, FlightRecorder, RecordedRun, FLIGHT_RECORDER_VERSION};
pub use registry::{MetricKind, MetricsRegistry};
pub use sink::{JsonlWriter, NullSink, RingBufferSink, TraceSink};
pub use span::{
    decompose_root, extend as extend_span, sum_by_kind, CriticalPathCollector, PathPartial,
    PathTotals, RootBreakdown, SpanChain, SpanKind, SpanLink, SpanSeg,
};
