//! A simulator-wide metrics registry: labelled counter, gauge, and
//! histogram families with Prometheus text exposition and a JSON dump.
//!
//! Families auto-register on first touch — instrumentation sites call
//! `inc_counter`/`set_gauge`/`observe` with the family name, help text,
//! and label pairs, and the registry creates the family and series as
//! needed. Label *names* are fixed by the first touch of a family;
//! inconsistent later touches panic, which turns instrumentation typos
//! into immediate test failures instead of silently forked families.
//!
//! All storage is `BTreeMap`-ordered, so both exposition formats are
//! deterministic for a given set of recorded values.

use crate::json::{write_escaped, write_f64, ObjectWriter};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tstorm_metrics::LogHistogram;

/// What a family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value that can go up and down.
    Gauge,
    /// Distribution of observed values (log-scale buckets).
    Histogram,
}

impl MetricKind {
    fn prom_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(u64),
    Gauge(f64),
    Histogram { hist: LogHistogram, sum: f64 },
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    label_names: Vec<String>,
    series: BTreeMap<Vec<String>, Series>,
}

/// The registry: a flat namespace of metric families.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn series_mut(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
    ) -> &mut Series {
        let family = self
            .families
            .entry(name.to_owned())
            .or_insert_with(|| Family {
                help: help.to_owned(),
                kind,
                label_names: labels.iter().map(|(k, _)| (*k).to_owned()).collect(),
                series: BTreeMap::new(),
            });
        assert!(
            family.kind == kind,
            "metric {name} touched as {:?} but registered as {:?}",
            kind,
            family.kind
        );
        assert!(
            family.label_names.len() == labels.len()
                && family
                    .label_names
                    .iter()
                    .zip(labels)
                    .all(|(reg, (k, _))| reg == k),
            "metric {name} touched with labels {:?} but registered with {:?}",
            labels.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            family.label_names
        );
        let key: Vec<String> = labels.iter().map(|(_, v)| (*v).to_owned()).collect();
        family.series.entry(key).or_insert_with(|| match kind {
            MetricKind::Counter => Series::Counter(0),
            MetricKind::Gauge => Series::Gauge(0.0),
            MetricKind::Histogram => Series::Histogram {
                hist: LogHistogram::new(),
                sum: 0.0,
            },
        })
    }

    /// Adds `by` to a counter series, creating the family/series on
    /// first touch.
    pub fn inc_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], by: u64) {
        match self.series_mut(name, help, MetricKind::Counter, labels) {
            Series::Counter(v) => *v += by,
            _ => unreachable!("kind checked in series_mut"),
        }
    }

    /// Sets a gauge series to `value`.
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        match self.series_mut(name, help, MetricKind::Gauge, labels) {
            Series::Gauge(v) => *v = value,
            _ => unreachable!("kind checked in series_mut"),
        }
    }

    /// Records `value` into a histogram series.
    pub fn observe(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        match self.series_mut(name, help, MetricKind::Histogram, labels) {
            Series::Histogram { hist, sum } => {
                hist.record(value);
                if value.is_finite() {
                    *sum += value;
                }
            }
            _ => unreachable!("kind checked in series_mut"),
        }
    }

    fn series(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        let key: Vec<String> = labels.iter().map(|(_, v)| (*v).to_owned()).collect();
        self.families.get(name)?.series.get(&key)
    }

    /// Current value of a counter series, if it exists.
    #[must_use]
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series(name, labels)? {
            Series::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Current value of a gauge series, if it exists.
    #[must_use]
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.series(name, labels)? {
            Series::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Sample count of a histogram series, if it exists.
    #[must_use]
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series(name, labels)? {
            Series::Histogram { hist, .. } => Some(hist.count()),
            _ => None,
        }
    }

    /// Number of registered families.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True if no family was ever touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the whole registry in the Prometheus text exposition
    /// format (version 0.0.4): `# HELP`/`# TYPE` headers per family,
    /// escaped label values, histograms as cumulative `_bucket` series
    /// plus `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let _ = write!(out, "# HELP {name} ");
            escape_help(&mut out, &family.help);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.prom_type());
            for (values, series) in &family.series {
                match series {
                    Series::Counter(v) => {
                        write_sample(&mut out, name, &family.label_names, values, None);
                        let _ = writeln!(out, " {v}");
                    }
                    Series::Gauge(v) => {
                        write_sample(&mut out, name, &family.label_names, values, None);
                        let _ = writeln!(out, " {v}");
                    }
                    Series::Histogram { hist, sum } => {
                        let bucket_name = format!("{name}_bucket");
                        let mut cumulative = 0u64;
                        for (le, count) in hist.nonzero_buckets() {
                            cumulative += count;
                            write_sample(
                                &mut out,
                                &bucket_name,
                                &family.label_names,
                                values,
                                Some(&format!("{le}")),
                            );
                            let _ = writeln!(out, " {cumulative}");
                        }
                        write_sample(
                            &mut out,
                            &bucket_name,
                            &family.label_names,
                            values,
                            Some("+Inf"),
                        );
                        let _ = writeln!(out, " {}", hist.count());
                        write_sample(
                            &mut out,
                            &format!("{name}_sum"),
                            &family.label_names,
                            values,
                            None,
                        );
                        let _ = writeln!(out, " {sum}");
                        write_sample(
                            &mut out,
                            &format!("{name}_count"),
                            &family.label_names,
                            values,
                            None,
                        );
                        let _ = writeln!(out, " {}", hist.count());
                    }
                }
            }
        }
        out
    }

    /// Renders the whole registry as one JSON object:
    /// `{"family": {"kind": …, "help": …, "series": [{"labels": {…},
    /// …value fields…}]}}`. Parseable by [`crate::json::parse`].
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut root = ObjectWriter::new();
        for (name, family) in &self.families {
            let mut fam = ObjectWriter::new();
            fam.str("kind", family.kind.prom_type())
                .str("help", &family.help);
            let mut series_json = String::from("[");
            for (i, (values, series)) in family.series.iter().enumerate() {
                if i > 0 {
                    series_json.push(',');
                }
                let mut entry = ObjectWriter::new();
                let mut labels = ObjectWriter::new();
                for (k, v) in family.label_names.iter().zip(values) {
                    labels.str(k, v);
                }
                entry.raw("labels", &labels.finish());
                match series {
                    Series::Counter(v) => {
                        entry.u64("value", *v);
                    }
                    Series::Gauge(v) => {
                        entry.f64("value", *v);
                    }
                    Series::Histogram { hist, sum } => {
                        entry.u64("count", hist.count()).f64("sum", *sum);
                        let mut buckets = String::from("[");
                        for (i, (le, count)) in hist.nonzero_buckets().enumerate() {
                            if i > 0 {
                                buckets.push(',');
                            }
                            buckets.push('[');
                            write_f64(&mut buckets, le);
                            let _ = write!(buckets, ",{count}]");
                        }
                        buckets.push(']');
                        entry.raw("buckets", &buckets);
                    }
                }
                series_json.push_str(&entry.finish());
            }
            series_json.push(']');
            fam.raw("series", &series_json);
            root.raw(name, &fam.finish());
        }
        root.finish()
    }
}

/// Escapes `# HELP` text: backslash and newline only, per the format
/// spec.
fn escape_help(out: &mut String, help: &str) {
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Writes `name{label="value",…,le="…"}` (no trailing space/value).
fn write_sample(
    out: &mut String,
    name: &str,
    label_names: &[String],
    values: &[String],
    le: Option<&str>,
) {
    out.push_str(name);
    if label_names.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in label_names.iter().zip(values) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push('=');
        escape_label_value(out, v);
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=");
        escape_label_value(out, le);
    }
    out.push('}');
}

/// Escapes a label value: backslash, double-quote, and newline.
fn escape_label_value(out: &mut String, v: &str) {
    // The JSON string escape is a superset of what Prometheus requires
    // for these three characters and is identical on them, so reuse it
    // (other control characters are rare in label values and the extra
    // \uXXXX escapes are still parseable by Prometheus ingesters).
    write_escaped(out, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("hops_total", "hops", &[("hop", "inter_node")], 2);
        r.inc_counter("hops_total", "hops", &[("hop", "inter_node")], 3);
        r.inc_counter("hops_total", "hops", &[("hop", "intra_worker")], 1);
        assert_eq!(
            r.counter_value("hops_total", &[("hop", "inter_node")]),
            Some(5)
        );
        assert_eq!(
            r.counter_value("hops_total", &[("hop", "intra_worker")]),
            Some(1)
        );
        assert_eq!(r.counter_value("hops_total", &[("hop", "other")]), None);
    }

    #[test]
    fn gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("depth", "queue depth", &[("executor", "3")], 7.0);
        r.set_gauge("depth", "queue depth", &[("executor", "3")], 2.0);
        assert_eq!(r.gauge_value("depth", &[("executor", "3")]), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "touched with labels")]
    fn inconsistent_label_names_panic() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("x_total", "x", &[("a", "1")], 1);
        r.inc_counter("x_total", "x", &[("b", "1")], 1);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("x_total", "x", &[], 1);
        r.set_gauge("x_total", "x", &[], 1.0);
    }

    #[test]
    fn prometheus_exposition_has_headers_and_escaping() {
        let mut r = MetricsRegistry::new();
        r.inc_counter(
            "weird_total",
            "line1\nline2 \\slash",
            &[("name", "a\"b\\c\nd")],
            9,
        );
        let text = r.render_prometheus();
        assert!(text.contains("# HELP weird_total line1\\nline2 \\\\slash\n"));
        assert!(text.contains("# TYPE weird_total counter\n"));
        assert!(
            text.contains(r#"weird_total{name="a\"b\\c\nd"} 9"#),
            "{text}"
        );
    }

    #[test]
    fn prometheus_histogram_is_cumulative() {
        let mut r = MetricsRegistry::new();
        for v in [1.0, 1.0, 100.0] {
            r.observe("lat_ms", "latency", &[], v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE lat_ms histogram\n"));
        // Two non-empty buckets → cumulative counts 2 then 3.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lat_ms_bucket"))
            .collect();
        assert_eq!(bucket_lines.len(), 3, "{text}"); // 2 finite + +Inf
        assert!(bucket_lines[0].ends_with(" 2"));
        assert!(bucket_lines[1].ends_with(" 3"));
        assert!(bucket_lines[2].contains(r#"le="+Inf""#));
        assert!(bucket_lines[2].ends_with(" 3"));
        assert!(text.contains("lat_ms_sum 102\n"));
        assert!(text.contains("lat_ms_count 3\n"));
    }

    #[test]
    fn json_dump_round_trips() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("c_total", "counts", &[("k", "v1")], 4);
        r.set_gauge("g", "gauge", &[], -1.5);
        r.observe("h_ms", "hist", &[("src", "x")], 2.0);
        let dump = r.render_json();
        let v = parse(&dump).expect("valid JSON");
        let c = v.get("c_total").unwrap();
        assert_eq!(c.get("kind").unwrap().as_str(), Some("counter"));
        let series = c.get("series").unwrap().as_array().unwrap();
        assert_eq!(series[0].get("value").unwrap().as_f64(), Some(4.0));
        assert_eq!(
            series[0].get("labels").unwrap().get("k").unwrap().as_str(),
            Some("v1")
        );
        let h = v
            .get("h_ms")
            .unwrap()
            .get("series")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(h[0].get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(h[0].get("sum").unwrap().as_f64(), Some(2.0));
        assert_eq!(h[0].get("buckets").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn prometheus_exposition_golden() {
        // Conformance golden: the exact exposition text is pinned so
        // any drift in headers, label escaping, bucket cumulation or
        // the closing `+Inf` bucket fails loudly.
        let mut r = MetricsRegistry::new();
        r.inc_counter(
            "tstorm_tuples_total",
            "tuples routed, line1\nline2 with \\slash",
            &[("path", "a\"quote\\slash\nnewline")],
            7,
        );
        r.set_gauge("tstorm_nodes_used", "nodes in use", &[], 4.0);
        for v in [1.0, 1.0, 100.0] {
            r.observe(
                "tstorm_latency_ms",
                "complete latency",
                &[("topo", "wc")],
                v,
            );
        }
        let golden = "\
# HELP tstorm_latency_ms complete latency
# TYPE tstorm_latency_ms histogram
tstorm_latency_ms_bucket{topo=\"wc\",le=\"1.189207115002721\"} 2
tstorm_latency_ms_bucket{topo=\"wc\",le=\"107.63474115247546\"} 3
tstorm_latency_ms_bucket{topo=\"wc\",le=\"+Inf\"} 3
tstorm_latency_ms_sum{topo=\"wc\"} 102
tstorm_latency_ms_count{topo=\"wc\"} 3
# HELP tstorm_nodes_used nodes in use
# TYPE tstorm_nodes_used gauge
tstorm_nodes_used 4
# HELP tstorm_tuples_total tuples routed, line1\\nline2 with \\\\slash
# TYPE tstorm_tuples_total counter
tstorm_tuples_total{path=\"a\\\"quote\\\\slash\\nnewline\"} 7
";
        assert_eq!(r.render_prometheus(), golden);
    }

    #[test]
    fn histogram_buckets_end_with_inf_and_are_cumulative_for_every_series() {
        let mut r = MetricsRegistry::new();
        r.observe("h_ms", "hist", &[("k", "a")], 1.0);
        r.observe("h_ms", "hist", &[("k", "b")], 5.0);
        let text = r.render_prometheus();
        for series in ["a", "b"] {
            let buckets: Vec<&str> = text
                .lines()
                .filter(|l| l.starts_with("h_ms_bucket") && l.contains(&format!("k=\"{series}\"")))
                .collect();
            assert!(
                buckets.last().unwrap().contains(r#"le="+Inf""#),
                "series {series} must close with +Inf: {text}"
            );
            let counts: Vec<u64> = buckets
                .iter()
                .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] <= w[1]),
                "bucket counts must be cumulative: {counts:?}"
            );
        }
    }

    #[test]
    fn empty_registry_renders_empty() {
        let r = MetricsRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.render_prometheus(), "");
        assert_eq!(r.render_json(), "{}");
    }
}
