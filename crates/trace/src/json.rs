//! Minimal in-tree JSON support: a push-style writer used by the JSONL
//! sink and the metrics dump, plus a small recursive-descent parser used
//! by round-trip tests and external tooling.
//!
//! No serde: the trace layer must stay dependency-free and its output
//! byte-deterministic. Numbers are written with Rust's shortest
//! round-trip float formatting, which is platform-independent.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null` (JSON
/// has no NaN/Inf).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A push-style writer for one JSON object: `{"k":v,…}` with insertion
/// order preserved, so output is deterministic.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    any: bool,
}

impl ObjectWriter {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_escaped(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (non-finite → `null`).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Adds a raw, pre-serialised JSON value.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value (for tests and tooling; the writer never goes
/// through this type).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order normalised).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field access.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses one JSON document. Returns `None` on any syntax error or
/// trailing garbage.
#[must_use]
pub fn parse(input: &str) -> Option<JsonValue> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, s: &str, v: JsonValue) -> Option<JsonValue> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<JsonValue> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.lit("null", JsonValue::Null),
            b't' => self.lit("true", JsonValue::Bool(true)),
            b'f' => self.lit("false", JsonValue::Bool(false)),
            b'"' => self.string().map(JsonValue::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(JsonValue::Number)
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(JsonValue::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(JsonValue::Object(map));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_specials() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn object_writer_builds_deterministic_objects() {
        let mut o = ObjectWriter::new();
        o.str("type", "X").u64("n", 3).f64("v", 1.5);
        assert_eq!(o.finish(), r#"{"type":"X","n":3,"v":1.5}"#);
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut o = ObjectWriter::new();
        o.str("s", "hi\n\"there\"")
            .u64("u", 42)
            .f64("f", -2.25)
            .raw("a", "[1,2,3]");
        let text = o.finish();
        let v = parse(&text).expect("parses");
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\n\"there\""));
        assert_eq!(v.get("u").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-2.25));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(parse("{"), None);
        assert_eq!(parse("{} trailing"), None);
        assert_eq!(parse("nope"), None);
        assert_eq!(parse(r#"{"a":}"#), None);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = ObjectWriter::new();
        o.f64("x", f64::NAN).f64("y", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":{"b":[1,{"c":null},true]},"d":"e"}"#).expect("parses");
        let b = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_f64(), Some(1.0));
        assert_eq!(b[1].get("c"), Some(&JsonValue::Null));
        assert_eq!(b[2], JsonValue::Bool(true));
    }
}
