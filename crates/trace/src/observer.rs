//! The [`Observer`]: the cloneable handle instrumentation sites hold.
//!
//! An observer is either *disabled* — a `None` inside, so every call is
//! a branch on an `Option` and nothing else — or *enabled*, wrapping a
//! shared state of sinks, a category filter, a sampling ratio, and the
//! [`MetricsRegistry`]. Simulator components store a clone and call
//! [`Observer::emit_with`] / [`Observer::metrics`]; when tracing is off
//! those calls cost one pointer check and never construct an event.
//!
//! Determinism contract: the observer never reads wall-clock time or
//! randomness. Filtering and sampling are pure functions of the event
//! sequence, so a fixed simulation produces a fixed trace byte stream.

use crate::event::{EventCategory, TraceEvent};
use crate::registry::MetricsRegistry;
use crate::sink::TraceSink;
use std::sync::{Arc, Mutex, PoisonError};
use tstorm_types::SimTime;

/// Which event categories pass to the sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    enabled: [bool; 5],
}

impl TraceFilter {
    /// Passes every category.
    #[must_use]
    pub fn all() -> Self {
        Self { enabled: [true; 5] }
    }

    /// Passes nothing (useful as a metrics-only configuration).
    #[must_use]
    pub fn none() -> Self {
        Self {
            enabled: [false; 5],
        }
    }

    /// Parses a comma-separated category list, e.g. `"tuple,control"`.
    /// Unknown tokens are reported as `Err` with the offending token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut f = Self::none();
        for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
            match EventCategory::parse(token) {
                Some(c) => f.set(c, true),
                None => return Err(token.trim().to_owned()),
            }
        }
        Ok(f)
    }

    fn idx(c: EventCategory) -> usize {
        EventCategory::ALL
            .iter()
            .position(|x| *x == c)
            .expect("category in ALL")
    }

    /// Enables or disables one category.
    pub fn set(&mut self, c: EventCategory, on: bool) {
        self.enabled[Self::idx(c)] = on;
    }

    /// True if `c` passes this filter.
    #[must_use]
    pub fn allows(&self, c: EventCategory) -> bool {
        self.enabled[Self::idx(c)]
    }
}

impl Default for TraceFilter {
    fn default() -> Self {
        Self::all()
    }
}

struct Inner {
    sinks: Vec<Box<dyn TraceSink>>,
    filter: TraceFilter,
    /// Keep 1 in `sample` data-plane events (tuple/queue/process).
    sample: u64,
    /// Data-plane events offered so far (drives sampling).
    sampled_seen: u64,
    registry: MetricsRegistry,
}

/// Builder for an enabled [`Observer`].
#[derive(Default)]
pub struct ObserverBuilder {
    sinks: Vec<Box<dyn TraceSink>>,
    filter: TraceFilter,
    sample: u64,
}

impl ObserverBuilder {
    /// Starts with no sinks, an all-pass filter, and no sampling.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sinks: Vec::new(),
            filter: TraceFilter::all(),
            sample: 1,
        }
    }

    /// Adds a sink. Multiple sinks all receive the same filtered stream.
    #[must_use]
    pub fn sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Sets the category filter.
    #[must_use]
    pub fn filter(mut self, filter: TraceFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Keeps 1 in `n` data-plane events (tuple/queue/process
    /// categories); control-plane events are never sampled out. `n = 1`
    /// (the default) keeps everything; `n = 0` is treated as 1.
    #[must_use]
    pub fn sample(mut self, n: u64) -> Self {
        self.sample = n.max(1);
        self
    }

    /// Builds an enabled observer.
    #[must_use]
    pub fn build(self) -> Observer {
        Observer {
            inner: Some(Arc::new(Mutex::new(Inner {
                sinks: self.sinks,
                filter: self.filter,
                sample: self.sample,
                sampled_seen: 0,
                registry: MetricsRegistry::new(),
            }))),
        }
    }
}

/// The handle instrumentation sites hold. Cloning is cheap (an `Arc`
/// bump or a `None` copy); all clones share sinks and registry.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Observer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Observer {
    /// The disabled observer: every call is a no-op after one `Option`
    /// check.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Starts building an enabled observer.
    #[must_use]
    pub fn builder() -> ObserverBuilder {
        ObserverBuilder::new()
    }

    /// True if this observer records anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits an already-constructed event. Prefer [`Self::emit_with`] on
    /// hot paths so the event is never built when tracing is off.
    pub fn emit(&self, at: SimTime, event: &TraceEvent) {
        if let Some(inner) = &self.inner {
            let mut g = inner.lock().unwrap_or_else(PoisonError::into_inner);
            g.offer(at, event);
        }
    }

    /// Emits the event produced by `make`, constructing it only when the
    /// observer is enabled.
    pub fn emit_with(&self, at: SimTime, make: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let event = make();
            let mut g = inner.lock().unwrap_or_else(PoisonError::into_inner);
            g.offer(at, &event);
        }
    }

    /// Applies the category filter and sampling counter to `event`
    /// *without* recording it — the admission half of [`Self::emit`].
    ///
    /// The engine's frame-parallel mode decides admission at emit time
    /// (in global event order, so the sampling counter advances exactly
    /// as the serial path's would) and delivers the admitted events later
    /// via [`Self::record_rendered`] once a worker lane has rendered
    /// their JSONL lines. Always `false` when disabled.
    #[must_use]
    pub fn admits(&self, event: &TraceEvent) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                let mut g = inner.lock().unwrap_or_else(PoisonError::into_inner);
                g.admit(event)
            }
        }
    }

    /// Hands an already-admitted event, with its pre-rendered JSONL
    /// line, to every sink. Callers must pass only events for which
    /// [`Self::admits`] returned `true`, in admission order — this
    /// method applies no filtering of its own.
    pub fn record_rendered(&self, at: SimTime, event: &TraceEvent, line: &str) {
        if let Some(inner) = &self.inner {
            let mut g = inner.lock().unwrap_or_else(PoisonError::into_inner);
            for sink in &mut g.sinks {
                sink.record_rendered(at, event, line);
            }
        }
    }

    /// Runs `f` against the shared metrics registry; skipped (returning
    /// `None`) when the observer is disabled.
    pub fn metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| {
            let mut g = inner.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut g.registry)
        })
    }

    /// Prometheus text exposition of the registry (`None` if disabled).
    #[must_use]
    pub fn render_prometheus(&self) -> Option<String> {
        self.metrics(|m| m.render_prometheus())
    }

    /// JSON dump of the registry (`None` if disabled).
    #[must_use]
    pub fn render_json(&self) -> Option<String> {
        self.metrics(|m| m.render_json())
    }

    /// Flushes every sink. Errors are collected into the first failure.
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(inner) = &self.inner {
            let mut g = inner.lock().unwrap_or_else(PoisonError::into_inner);
            for sink in &mut g.sinks {
                sink.flush()?;
            }
        }
        Ok(())
    }
}

impl Inner {
    /// Filter + sampling decision; advances the sampling counter. The
    /// single implementation both [`Observer::emit`] and
    /// [`Observer::admits`] go through, so serial recording and framed
    /// admission evolve the sampling state identically.
    fn admit(&mut self, event: &TraceEvent) -> bool {
        let category = event.category();
        if !self.filter.allows(category) {
            return false;
        }
        if category.is_sampled() && self.sample > 1 {
            let keep = self.sampled_seen.is_multiple_of(self.sample);
            self.sampled_seen += 1;
            if !keep {
                return false;
            }
        }
        true
    }

    fn offer(&mut self, at: SimTime, event: &TraceEvent) {
        if !self.admit(event) {
            return;
        }
        for sink in &mut self.sinks {
            sink.record(at, event);
        }
    }
}

/// A sink wrapper that keeps the underlying sink externally readable:
/// the observer owns one handle, the test (or CLI) keeps another and
/// inspects or extracts the sink after the run.
#[derive(Debug)]
pub struct SharedSink<S: TraceSink>(Arc<Mutex<S>>);

impl<S: TraceSink> SharedSink<S> {
    /// Wraps `sink` for shared access.
    #[must_use]
    pub fn new(sink: S) -> Self {
        Self(Arc::new(Mutex::new(sink)))
    }

    /// A second handle to the same sink.
    #[must_use]
    pub fn handle(&self) -> SharedSink<S> {
        SharedSink(Arc::clone(&self.0))
    }

    /// Runs `f` against the wrapped sink.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut g = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut g)
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        self.with(|s| s.record(at, event));
    }

    fn record_rendered(&mut self, at: SimTime, event: &TraceEvent, line: &str) {
        self.with(|s| s.record_rendered(at, event, line));
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.with(TraceSink::flush)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    fn tuple_ev(n: u64) -> TraceEvent {
        TraceEvent::Ack { tuple: n }
    }

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.is_enabled());
        obs.emit(SimTime::ZERO, &tuple_ev(1));
        let mut built = false;
        obs.emit_with(SimTime::ZERO, || {
            built = true;
            tuple_ev(2)
        });
        assert!(!built, "event constructed despite disabled observer");
        assert_eq!(obs.metrics(|m| m.len()), None);
        assert_eq!(obs.render_prometheus(), None);
    }

    #[test]
    fn filter_drops_categories() {
        let ring = SharedSink::new(RingBufferSink::new(16));
        let handle = ring.handle();
        let obs = Observer::builder()
            .sink(Box::new(ring))
            .filter(TraceFilter::parse("control").unwrap())
            .build();
        obs.emit(SimTime::ZERO, &tuple_ev(1)); // tuple: filtered out
        obs.emit(SimTime::ZERO, &TraceEvent::GammaChanged { gamma: 0.5 });
        assert_eq!(handle.with(|r| r.len()), 1);
    }

    #[test]
    fn sampling_keeps_one_in_n_data_plane_events() {
        let ring = SharedSink::new(RingBufferSink::new(64));
        let handle = ring.handle();
        let obs = Observer::builder().sink(Box::new(ring)).sample(3).build();
        for i in 0..9 {
            obs.emit(SimTime::ZERO, &tuple_ev(i));
        }
        // Control events are never sampled out.
        for _ in 0..4 {
            obs.emit(SimTime::ZERO, &TraceEvent::GammaChanged { gamma: 1.0 });
        }
        assert_eq!(handle.with(|r| r.len()), 3 + 4);
    }

    #[test]
    fn filter_parse_rejects_unknown_tokens() {
        assert_eq!(TraceFilter::parse("tuple,bogus"), Err("bogus".to_owned()));
        let f = TraceFilter::parse("tuple, worker").unwrap();
        assert!(f.allows(EventCategory::Tuple));
        assert!(f.allows(EventCategory::Worker));
        assert!(!f.allows(EventCategory::Queue));
    }

    #[test]
    fn metrics_are_shared_across_clones() {
        let obs = Observer::builder().build();
        let clone = obs.clone();
        obs.metrics(|m| m.inc_counter("c_total", "c", &[], 1));
        clone.metrics(|m| m.inc_counter("c_total", "c", &[], 2));
        assert_eq!(
            obs.metrics(|m| m.counter_value("c_total", &[])),
            Some(Some(3))
        );
    }
}
