//! `simbench` — offline, zero-dependency simulator benchmark runner.
//!
//! Criterion needs crates.io access, which this environment does not
//! have, so the throughput trajectory is recorded by this std-only
//! binary instead: it runs canonical scenarios against the tuple-level
//! simulator with `std::time::Instant` timers and appends one JSON
//! record per scenario to a trajectory file (`BENCH_sim.json` at the
//! repo root by default).
//!
//! ```text
//! simbench [--out PATH] [--label TEXT] [--quick] [--scenario NAME]...
//!          [--batch-size N[,N]...] [--workers N[,N]...] [--repeat K]
//!          [--guard BASELINE [--tolerance F]]
//! simbench --check PATH
//! ```
//!
//! Record schema (one object per scenario run, newest last):
//!
//! ```json
//! {"scenario":"wordcount","label":"...","quick":false,
//!  "events":123,"wall_ms":1.5,"events_per_sec":82000.0,
//!  "peak_queue_depth":400,"completed":100,"emitted":120,
//!  "seed":42,"duration_secs":120,"nodes":10,"slots_per_node":4,
//!  "batch_size":1,"workspace_version":"0.1.0"}
//! ```
//!
//! `--check` validates an emitted file: it must parse as a non-empty
//! JSON array whose entries carry every schema key — the CI bench-smoke
//! step runs it after a `--quick` pass. `--guard` is the observability
//! overhead guard: fresh spans-off measurements must stay within
//! `--tolerance` (default 10%) of the best committed events/s for the
//! same (scenario, batch size) in the baseline trajectory.
//!
//! `--batch-size 1,8` measures a transfer-batching A/B: every requested
//! batch size runs per scenario. `--workers 1,4` measures the
//! frame-synchronized parallel-stepping A/B the same way; because the
//! lane threads only have work when observability is on, any grid that
//! includes a workers value above 1 runs *every* arm with spans
//! enabled, so workers-1 and workers-N cells differ only in the lane
//! machinery. Such records carry `workers` and `spans` keys and are
//! guarded separately from the spans-off baseline. `--repeat K`
//! interleaves K passes over the full (batch size × workers ×
//! scenario) grid — A/B/A/B rather than A…A/B…B, so slow machine drift
//! biases neither arm — and keeps the best (highest events/s) run per
//! (scenario, batch size, workers) cell.

use std::process::ExitCode;
use std::time::Instant;
use tstorm_bench::args::parse_workers;
use tstorm_cli::args::ScaleClass;
use tstorm_cli::scenario::{scale_chain_params, scale_cluster};
use tstorm_cluster::ClusterSpec;
use tstorm_core::{SystemMode, TStormConfig, TStormSystem};
use tstorm_sim::{FaultPlan, PairBackend};
use tstorm_trace::json::{self, JsonValue, ObjectWriter};
use tstorm_types::{Mhz, SimTime};
use tstorm_workloads::chain;
use tstorm_workloads::throughput::{self, ThroughputParams};
use tstorm_workloads::transfer::{self, TransferParams};
use tstorm_workloads::wordcount::{self, WordCountParams, WordCountState};

/// Keys every trajectory record must carry (`--check` enforces this).
/// The provenance keys (seed through workspace_version) pin the run
/// configuration so a trajectory entry can be reproduced.
const SCHEMA_KEYS: &[&str] = &[
    "scenario",
    "label",
    "quick",
    "events",
    "wall_ms",
    "events_per_sec",
    "peak_queue_depth",
    "completed",
    "emitted",
    "seed",
    "duration_secs",
    "nodes",
    "slots_per_node",
    "batch_size",
    "workspace_version",
];

/// One measured scenario run.
struct Record {
    scenario: &'static str,
    label: String,
    quick: bool,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
    peak_queue_depth: usize,
    completed: u64,
    emitted: u64,
    seed: u64,
    duration_secs: u64,
    nodes: u32,
    slots_per_node: u32,
    batch_size: u32,
    /// Observability lane threads (1 = serial) and whether spans were
    /// collected. Extra keys beyond `SCHEMA_KEYS` — `--check` requires
    /// every schema key but tolerates additions, so records predating
    /// them (implicitly workers 1, spans off) stay valid.
    workers: u32,
    spans: bool,
    /// Pair-traffic store A/B annotations, stamped only by the scale
    /// scenarios.
    pair_backend: Option<&'static str>,
    pair_state_bytes: Option<u64>,
}

impl Record {
    fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("scenario", self.scenario)
            .str("label", &self.label)
            .raw("quick", if self.quick { "true" } else { "false" })
            .u64("events", self.events)
            .f64("wall_ms", self.wall_ms)
            .f64("events_per_sec", self.events_per_sec)
            .u64("peak_queue_depth", self.peak_queue_depth as u64)
            .u64("completed", self.completed)
            .u64("emitted", self.emitted)
            .u64("seed", self.seed)
            .u64("duration_secs", self.duration_secs)
            .u64("nodes", u64::from(self.nodes))
            .u64("slots_per_node", u64::from(self.slots_per_node))
            .u64("batch_size", u64::from(self.batch_size))
            .str("workspace_version", env!("CARGO_PKG_VERSION"));
        w.u64("workers", u64::from(self.workers));
        w.raw("spans", if self.spans { "true" } else { "false" });
        if let Some(backend) = self.pair_backend {
            w.str("pair_backend", backend);
        }
        if let Some(bytes) = self.pair_state_bytes {
            w.u64("pair_state_bytes", bytes);
        }
        w.finish()
    }
}

struct Options {
    out: String,
    label: String,
    quick: bool,
    scenarios: Vec<String>,
    batch_sizes: Vec<u32>,
    workers: Vec<u32>,
    repeat: u32,
    check: Option<String>,
    guard: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: "BENCH_sim.json".to_owned(),
        label: String::new(),
        quick: false,
        scenarios: Vec::new(),
        batch_sizes: vec![1],
        workers: vec![1],
        repeat: 1,
        check: None,
        guard: None,
        tolerance: 0.10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = value("--out")?,
            "--label" => opts.label = value("--label")?,
            "--quick" => opts.quick = true,
            "--scenario" => opts.scenarios.push(value("--scenario")?),
            "--batch-size" => {
                opts.batch_sizes = value("--batch-size")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| format!("--batch-size: `{s}` is not a positive integer"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
                if opts.batch_sizes.is_empty() {
                    return Err("--batch-size requires at least one value".to_owned());
                }
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .split(',')
                    .map(|s| parse_workers(s.trim()).map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<Vec<u32>, String>>()?;
                if opts.workers.is_empty() {
                    return Err("--workers requires at least one value".to_owned());
                }
            }
            "--repeat" => {
                opts.repeat = value("--repeat")?
                    .parse::<u32>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| "--repeat must be a positive integer".to_owned())?;
            }
            "--check" => opts.check = Some(value("--check")?),
            "--guard" => opts.guard = Some(value("--guard")?),
            "--tolerance" => {
                opts.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance must be a number".to_owned())?;
                if !(0.0..1.0).contains(&opts.tolerance) {
                    return Err("--tolerance must be within [0, 1)".to_owned());
                }
            }
            "--help" | "-h" => {
                return Err("usage: simbench [--out PATH] [--label TEXT] [--quick] \
                     [--scenario wordcount|fault-replay|overload\
                     |scale-{100,500}-{sparse,dense}]... \
                     [--batch-size N[,N]...] [--workers N[,N]...] [--repeat K] \
                     [--guard BASELINE [--tolerance F]] | simbench --check PATH"
                    .to_owned())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

/// One grid cell's engine configuration, shared by every scenario.
#[derive(Clone, Copy)]
struct Cell {
    quick: bool,
    batch_size: u32,
    /// Observability lane threads for frame-synchronized stepping.
    workers: u32,
    /// Span collection: forced on across the whole grid whenever a
    /// workers A/B is requested, so the lane threads have real work
    /// and the arms differ only in the lane machinery.
    spans: bool,
}

impl Cell {
    /// Applies the cell's engine knobs to a freshly built system.
    fn apply(self, system: &mut TStormSystem) {
        system.set_workers(self.workers);
        if self.spans {
            system.enable_spans();
        }
    }
}

/// Word Count at the paper's settings: the canonical throughput
/// scenario — a fields-grouped fan-out with ackers enabled.
fn run_wordcount(label: &str, cell: Cell) -> Record {
    let duration = if cell.quick { 30 } else { 120 };
    let (nodes, slots, seed) = (10, 4, 42);
    let cluster = ClusterSpec::homogeneous(nodes, slots, Mhz::new(8000.0)).expect("valid cluster");
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::TStorm)
        .with_seed(seed);
    config.sim.batch_size = cell.batch_size;
    let mut system = TStormSystem::new(cluster, config).expect("valid config");
    cell.apply(&mut system);
    let p = WordCountParams::paper();
    let topo = wordcount::topology(&p).expect("valid topology");
    let state = WordCountState::new();
    state.attach_corpus_producer(SimTime::ZERO, 300.0);
    let mut f = wordcount::factory(&state);
    system.submit(&topo, &mut f).expect("submits");
    system.start().expect("starts");

    let start = Instant::now();
    system
        .run_until(SimTime::from_secs(duration))
        .expect("runs");
    finish(
        "wordcount",
        label,
        cell,
        start,
        &system,
        Provenance {
            seed,
            duration_secs: duration,
            nodes,
            slots_per_node: slots,
        },
    )
}

/// The transfer-density overload: the [`transfer`] fan-out pipeline
/// (spout → ×48 fan → sink, one near-free executor each) spread over
/// two single-slot nodes joined by a deliberately slow 10 Mbit/s link,
/// so both edges are inter-node and the fan's output — 48k tiny
/// tuples/s of 16 payload bytes against a 32-byte frame header — far
/// exceeds what the wire can carry one message at a time. The link,
/// not the CPU, is the bottleneck: per-message framing overhead is
/// what transfer batching amortises, so this is the scenario where the
/// `--batch-size` A/B measures the real effect — a batched run moves
/// several times the tuples through the same saturated link in the
/// same simulated window, and each delivered tuple costs the engine
/// fewer event-queue entries. Storm's static default scheduler keeps
/// the placement pinned (no rebalance mid-measurement).
fn run_overload(label: &str, cell: Cell) -> Record {
    let duration = if cell.quick { 20 } else { 60 };
    let (nodes, slots, seed) = (2, 1, 42);
    let cluster = ClusterSpec::homogeneous(nodes, slots, Mhz::new(8000.0)).expect("valid cluster");
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::StormDefault)
        .with_seed(seed);
    config.sim.batch_size = cell.batch_size;
    config.sim.network.nic_bits_per_sec = 10_000_000;
    let mut system = TStormSystem::new(cluster, config).expect("valid config");
    cell.apply(&mut system);
    let p = TransferParams::overload();
    let topo = transfer::topology(&p).expect("valid topology");
    let mut f = transfer::factory(&p, seed);
    system.submit(&topo, &mut f).expect("submits");
    system.start().expect("starts");

    let start = Instant::now();
    system
        .run_until(SimTime::from_secs(duration))
        .expect("runs");
    finish(
        "overload",
        label,
        cell,
        start,
        &system,
        Provenance {
            seed,
            duration_secs: duration,
            nodes,
            slots_per_node: slots,
        },
    )
}

/// Fault-plan replay: the Throughput Test with a node crash (plus
/// restart) and a transient NIC slowdown, exercising the crash /
/// timeout / replay / recovery paths of the engine.
fn run_fault_replay(label: &str, cell: Cell) -> Record {
    let duration = if cell.quick { 60 } else { 180 };
    let (nodes, slots, seed) = (6, 4, 42);
    let cluster = ClusterSpec::homogeneous(nodes, slots, Mhz::new(8000.0)).expect("valid cluster");
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::TStorm)
        .with_seed(seed);
    config.sim.batch_size = cell.batch_size;
    let mut system = TStormSystem::new(cluster, config).expect("valid config");
    cell.apply(&mut system);
    let p = ThroughputParams::paper();
    let topo = throughput::topology(&p).expect("valid topology");
    let mut f = throughput::factory(&p, 42);
    system.submit(&topo, &mut f).expect("submits");
    system.start().expect("starts");
    let plan = FaultPlan::from_specs([
        "node-crash@t=30,node=2,restart=40",
        "nic-slow@t=15,node=1,factor=4,dur=20",
    ])
    .expect("valid plan");
    system
        .simulation_mut()
        .apply_fault_plan(&plan)
        .expect("applies");

    let start = Instant::now();
    system
        .run_until(SimTime::from_secs(duration))
        .expect("runs");
    finish(
        "fault-replay",
        label,
        cell,
        start,
        &system,
        Provenance {
            seed,
            duration_secs: duration,
            nodes,
            slots_per_node: slots,
        },
    )
}

/// The run configuration stamped into each trajectory record (the
/// engine knobs come from the grid [`Cell`]).
struct Provenance {
    seed: u64,
    duration_secs: u64,
    nodes: u32,
    slots_per_node: u32,
}

fn finish(
    scenario: &'static str,
    label: &str,
    cell: Cell,
    start: Instant,
    system: &TStormSystem,
    provenance: Provenance,
) -> Record {
    let wall = start.elapsed();
    let sim = system.simulation();
    let events = sim.events_processed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    Record {
        scenario,
        label: label.to_owned(),
        quick: cell.quick,
        events,
        wall_ms,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        peak_queue_depth: sim.queue_high_water(),
        completed: sim.completed(),
        emitted: sim.emitted(),
        seed: provenance.seed,
        duration_secs: provenance.duration_secs,
        nodes: provenance.nodes,
        slots_per_node: provenance.slots_per_node,
        batch_size: cell.batch_size,
        workers: cell.workers,
        spans: cell.spans,
        pair_backend: None,
        pair_state_bytes: None,
    }
}

/// The `--scale` scenario family as a pair-backend A/B: the chain
/// preset on the heterogeneous scale cluster (scale-100 is 100 nodes /
/// 10,200 executors), run once per backend under distinct scenario
/// names so the best-per-cell dedup and the overhead guard treat the
/// arms as separate cells. Each record carries `pair_backend` and the
/// high-water `pair_state_bytes`, which is the headline number: dense
/// holds `Ne²` cells (~832 MB at scale-100) while sparse holds only
/// the observed pairs.
fn run_scale(
    scenario: &'static str,
    class: ScaleClass,
    backend: PairBackend,
    label: &str,
    cell: Cell,
) -> Record {
    let duration = if cell.quick { 15 } else { 60 };
    let seed = 42;
    let cluster = scale_cluster(class).expect("valid cluster");
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::TStorm)
        .with_seed(seed);
    config.sim.batch_size = cell.batch_size;
    config.sim.pair_backend = backend;
    let mut system = TStormSystem::new(cluster, config).expect("valid config");
    cell.apply(&mut system);
    let p = scale_chain_params(class);
    let topo = chain::topology(&p).expect("valid topology");
    let mut f = chain::factory(&p, seed);
    system.submit(&topo, &mut f).expect("submits");
    system.start().expect("starts");

    let start = Instant::now();
    system
        .run_until(SimTime::from_secs(duration))
        .expect("runs");
    let mut rec = finish(
        scenario,
        label,
        cell,
        start,
        &system,
        Provenance {
            seed,
            duration_secs: duration,
            nodes: class.nodes(),
            slots_per_node: class.slots(),
        },
    );
    let stats = system.simulation().engine_stats();
    rec.pair_backend = Some(match backend {
        PairBackend::Dense => "dense",
        PairBackend::Sparse => "sparse",
    });
    rec.pair_state_bytes = Some(stats.pair_state_bytes);
    rec
}

/// Reads an existing trajectory file as raw JSON record strings, so a
/// new run appends rather than overwrites. Unparseable or non-array
/// contents restart the trajectory.
fn read_trajectory(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    match json::parse(&text) {
        Some(JsonValue::Array(_)) => {}
        _ => return Vec::new(),
    }
    // Re-split conservatively: every line holding one object.
    text.lines()
        .map(str::trim)
        .map(|l| l.trim_end_matches(','))
        .filter(|l| l.starts_with('{') && l.ends_with('}'))
        .map(str::to_owned)
        .collect()
}

fn write_trajectory(path: &str, records: &[String]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("  ");
        out.push_str(r);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Validates a trajectory file: parseable, a non-empty array, every
/// record carrying every schema key.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = json::parse(&text).ok_or_else(|| format!("{path}: not valid JSON"))?;
    let records = parsed
        .as_array()
        .ok_or_else(|| format!("{path}: top level must be an array"))?;
    if records.is_empty() {
        return Err(format!("{path}: trajectory is empty"));
    }
    for (i, rec) in records.iter().enumerate() {
        let obj = rec
            .as_object()
            .ok_or_else(|| format!("{path}: record {i} is not an object"))?;
        for key in SCHEMA_KEYS {
            if !obj.contains_key(*key) {
                return Err(format!("{path}: record {i} is missing key `{key}`"));
            }
        }
    }
    println!("{path}: {} records, schema ok", records.len());
    Ok(())
}

/// The observability overhead guard: fresh measurements must stay
/// within `tolerance` of the best committed events/s for the same
/// (scenario, batch size, workers, spans) in `baseline_path`. Only
/// baseline records with the *same* `quick` flag are comparable —
/// quick runs carry proportionally more warmup, so their throughput
/// sits well below a full run's. Baseline records predating the
/// `batch_size` / `workers` / `spans` keys count as batch size 1,
/// workers 1 and spans off (the engine's historical behaviour), so
/// spans-on workers A/B cells never cross-match the spans-off serial
/// baseline. A measurement whose cell has no committed baseline passes
/// with a note — it IS the baseline.
fn guard(records: &[Record], baseline_path: &str, tolerance: f64) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let parsed = json::parse(&text).ok_or_else(|| format!("{baseline_path}: not valid JSON"))?;
    let baseline = parsed
        .as_array()
        .ok_or_else(|| format!("{baseline_path}: top level must be an array"))?;
    let mut any_compared = false;
    for rec in records {
        let quick_matches =
            |b: &&JsonValue| matches!(b.get("quick"), Some(JsonValue::Bool(q)) if *q == rec.quick);
        let batch_matches = |b: &&JsonValue| {
            let batch = b
                .get("batch_size")
                .and_then(JsonValue::as_f64)
                .unwrap_or(1.0);
            batch == f64::from(rec.batch_size)
        };
        let workers_matches = |b: &&JsonValue| {
            let workers = b.get("workers").and_then(JsonValue::as_f64).unwrap_or(1.0);
            workers == f64::from(rec.workers)
        };
        let spans_matches = |b: &&JsonValue| {
            let spans = matches!(b.get("spans"), Some(JsonValue::Bool(true)));
            spans == rec.spans
        };
        let best = baseline
            .iter()
            .filter(|b| b.get("scenario").and_then(|s| s.as_str()) == Some(rec.scenario))
            .filter(quick_matches)
            .filter(batch_matches)
            .filter(workers_matches)
            .filter(spans_matches)
            .filter_map(|b| b.get("events_per_sec").and_then(|v| v.as_f64()))
            .fold(f64::NAN, f64::max);
        if best.is_nan() {
            println!(
                "guard: {:<14} batch={} workers={} has no committed baseline yet, skipping",
                rec.scenario, rec.batch_size, rec.workers,
            );
            continue;
        }
        any_compared = true;
        let floor = best * (1.0 - tolerance);
        if rec.events_per_sec < floor {
            return Err(format!(
                "overhead guard: {} (batch={}, workers={}) ran at {:.0} events/s, more than \
                 {:.0}% below the committed baseline {:.0} events/s (floor {:.0})",
                rec.scenario,
                rec.batch_size,
                rec.workers,
                rec.events_per_sec,
                tolerance * 100.0,
                best,
                floor,
            ));
        }
        println!(
            "guard: {:<14} batch={} workers={} {:>10.0} events/s vs baseline {:>10.0} \
             (floor {:>10.0}) ok",
            rec.scenario, rec.batch_size, rec.workers, rec.events_per_sec, best, floor,
        );
    }
    if !any_compared {
        return Err(format!(
            "{baseline_path}: no baseline record matched any measured \
             (scenario, quick, batch_size) — nothing was guarded"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            // `--help` surfaces as the usage string: print it and exit
            // zero. Anything else is a malformed invocation: exit 2,
            // the strict-args convention shared with the figure
            // binaries.
            if e.starts_with("usage:") {
                println!("{e}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.check {
        return match check(path) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let all = ["wordcount", "fault-replay", "overload"];
    let wanted: Vec<&str> = if opts.scenarios.is_empty() {
        all.to_vec()
    } else {
        opts.scenarios.iter().map(String::as_str).collect()
    };
    // The lane count is bounded by the scenario's cluster size, exactly
    // like the CLI's workers ≤ nodes rule.
    let scenario_nodes = |name: &str| -> Option<u32> {
        Some(match name {
            "wordcount" => 10,
            "fault-replay" => 6,
            "overload" => 2,
            "scale-100-sparse" | "scale-100-dense" => 100,
            "scale-500-sparse" | "scale-500-dense" => 500,
            _ => return None,
        })
    };
    for name in &wanted {
        let Some(nodes) = scenario_nodes(name) else {
            eprintln!(
                "error: unknown scenario `{name}` (expected one of {all:?} \
                 or scale-{{100,500}}-{{sparse,dense}})"
            );
            return ExitCode::from(2);
        };
        for &workers in &opts.workers {
            if workers > nodes {
                eprintln!(
                    "error: --workers {workers} exceeds the {nodes} worker nodes \
                     of scenario `{name}`"
                );
                return ExitCode::from(2);
            }
        }
    }
    // The lane threads only have work when observability is on: any
    // grid with a workers value above 1 runs spans across every arm so
    // the A/B isolates the lane machinery (see the module docs).
    let spans = opts.workers.iter().any(|w| *w > 1);
    // Interleave the full (batch size × workers × scenario) grid per
    // repetition — A/B/A/B rather than A…A/B…B — and keep the best
    // (highest events/s) run per cell, so machine drift biases neither
    // arm.
    let mut best: Vec<Record> = Vec::new();
    for rep in 0..opts.repeat {
        for &batch_size in &opts.batch_sizes {
            for &workers in &opts.workers {
                let cell = Cell {
                    quick: opts.quick,
                    batch_size,
                    workers,
                    spans,
                };
                for name in &wanted {
                    let scale = |s, c, b| run_scale(s, c, b, &opts.label, cell);
                    let rec = match *name {
                        "wordcount" => run_wordcount(&opts.label, cell),
                        "fault-replay" => run_fault_replay(&opts.label, cell),
                        "overload" => run_overload(&opts.label, cell),
                        // The scale family is opt-in (not part of the
                        // default set): a scale-100 run moves ~10k
                        // executors and the dense arm materialises the
                        // full Ne² matrix.
                        "scale-100-sparse" => scale(
                            "scale-100-sparse",
                            ScaleClass::Scale100,
                            PairBackend::Sparse,
                        ),
                        "scale-100-dense" => {
                            scale("scale-100-dense", ScaleClass::Scale100, PairBackend::Dense)
                        }
                        "scale-500-sparse" => scale(
                            "scale-500-sparse",
                            ScaleClass::Scale500,
                            PairBackend::Sparse,
                        ),
                        "scale-500-dense" => {
                            scale("scale-500-dense", ScaleClass::Scale500, PairBackend::Dense)
                        }
                        other => unreachable!("scenario `{other}` was validated above"),
                    };
                    println!(
                        "[{}/{}] {:<14} batch={:<3} workers={:<2} {:>10} events in {:>9.1} ms  \
                         ->  {:>10.0} events/s  (peak queue {}, completed {})",
                        rep + 1,
                        opts.repeat,
                        rec.scenario,
                        rec.batch_size,
                        rec.workers,
                        rec.events,
                        rec.wall_ms,
                        rec.events_per_sec,
                        rec.peak_queue_depth,
                        rec.completed,
                    );
                    match best.iter_mut().find(|b| {
                        b.scenario == rec.scenario
                            && b.batch_size == rec.batch_size
                            && b.workers == rec.workers
                    }) {
                        Some(b) if b.events_per_sec >= rec.events_per_sec => {}
                        Some(b) => *b = rec,
                        None => best.push(rec),
                    }
                }
            }
        }
    }
    let records = best;

    if let Some(baseline) = &opts.guard {
        if let Err(e) = guard(&records, baseline, opts.tolerance) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut trajectory = read_trajectory(&opts.out);
    trajectory.extend(records.iter().map(Record::to_json));
    if let Err(e) = write_trajectory(&opts.out, &trajectory) {
        eprintln!("error: writing {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("trajectory written to {}", opts.out);
    ExitCode::SUCCESS
}
