//! Section V headline numbers: Storm vs T-Storm on all three topologies
//! at consolidating γ values — the paper's "over 84% and 27% speedup on
//! lightly and heavily loaded topologies with 30% fewer worker nodes".
//!
//! Usage: `summary [duration_secs] [seed]` (defaults: 1000, 42).

use tstorm_bench::experiments::headline;
use tstorm_metrics::ComparisonRow;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Headline comparison over {duration}s (stable half counted):\n");
    let rows = headline(duration, seed);
    println!("{}", ComparisonRow::render_table(&rows));
    let avg_node_saving: f64 = rows
        .iter()
        .filter(|r| r.baseline_nodes > 0)
        .map(|r| 1.0 - f64::from(r.candidate_nodes) / f64::from(r.baseline_nodes))
        .sum::<f64>()
        / rows.len().max(1) as f64;
    println!(
        "Average worker-node reduction: {:.0}% (the operational-cost lever of Section I).",
        avg_node_saving * 100.0
    );
    println!("Paper abstract: >84% speedup (light) and 27% (heavy) with 30% fewer worker nodes.");
}
