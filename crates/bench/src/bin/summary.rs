//! Section V headline numbers: Storm vs T-Storm on all three topologies
//! at consolidating γ values — the paper's "over 84% and 27% speedup on
//! lightly and heavily loaded topologies with 30% fewer worker nodes".
//!
//! Usage: `summary [duration_secs] [seed]` (defaults: 1000, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::headline;
use tstorm_bench::fig_args_or_exit;
use tstorm_metrics::ComparisonRow;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("summary", 1000, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);

    println!("Headline comparison over {duration}s (stable half counted):\n");
    let rows = headline(duration, seed);
    println!("{}", ComparisonRow::render_table(&rows));
    let avg_node_saving: f64 = rows
        .iter()
        .filter(|r| r.baseline_nodes > 0)
        .map(|r| 1.0 - f64::from(r.candidate_nodes) / f64::from(r.baseline_nodes))
        .sum::<f64>()
        / rows.len().max(1) as f64;
    println!(
        "Average worker-node reduction: {:.0}% (the operational-cost lever of Section I).",
        avg_node_saving * 100.0
    );
    println!("Paper abstract: >84% speedup (light) and 27% (heavy) with 30% fewer worker nodes.");
    ExitCode::SUCCESS
}
