//! Fig. 2 — impact of inter-process and inter-node traffic: the chain
//! topology under the n1w1 / n5w5 / n5w10 placements.
//!
//! Usage: `fig2 [duration_secs] [seed]` (defaults: 500, 42 — the paper
//! ran this experiment for 500 s).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig2, render_outcome};
use tstorm_bench::fig_args_or_exit;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig2", 500, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);

    println!("Fig. 2 reproduction: chain topology, three placements, {duration}s\n");
    let outcomes = fig2(duration, seed);
    for o in &outcomes {
        println!("{}", render_outcome(o));
    }
    println!("Expected shape (paper): n1w1 fastest; n5w5 ~35% slower; n5w10 ~67% slower.");
    let mean = |i: usize| {
        outcomes[i]
            .report
            .proc_time_ms
            .overall_mean()
            .unwrap_or(f64::NAN)
    };
    let (a, b, c) = (mean(0), mean(1), mean(2));
    println!(
        "Measured: n1w1 {a:.3} ms | n5w5 {b:.3} ms (+{:.0}%) | n5w10 {c:.3} ms (+{:.0}%)",
        (b - a) / a * 100.0,
        (c - a) / a * 100.0
    );
    ExitCode::SUCCESS
}
