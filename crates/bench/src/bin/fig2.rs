//! Fig. 2 — impact of inter-process and inter-node traffic: the chain
//! topology under the n1w1 / n5w5 / n5w10 placements.
//!
//! Usage: `fig2 [duration_secs] [seed]` (defaults: 500, 42 — the paper
//! ran this experiment for 500 s).

use tstorm_bench::experiments::{fig2, render_outcome};

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Fig. 2 reproduction: chain topology, three placements, {duration}s\n");
    let outcomes = fig2(duration, seed);
    for o in &outcomes {
        println!("{}", render_outcome(o));
    }
    println!("Expected shape (paper): n1w1 fastest; n5w5 ~35% slower; n5w10 ~67% slower.");
    let mean = |i: usize| {
        outcomes[i]
            .report
            .proc_time_ms
            .overall_mean()
            .unwrap_or(f64::NAN)
    };
    let (a, b, c) = (mean(0), mean(1), mean(2));
    println!(
        "Measured: n1w1 {a:.3} ms | n5w5 {b:.3} ms (+{:.0}%) | n5w10 {c:.3} ms (+{:.0}%)",
        (b - a) / a * 100.0,
        (c - a) / a * 100.0
    );
}
