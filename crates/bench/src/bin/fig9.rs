//! Fig. 9 — overload handling on Word Count: one worker on one node,
//! two concurrent corpus streams; T-Storm detects the overload and
//! reschedules onto more nodes; processing time drops sharply.
//!
//! Usage: `fig9 [duration_secs] [seed]` (defaults: 1000, 42).

use tstorm_bench::experiments::{fig9, render_outcome};

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Fig. 9 reproduction: Word Count overload recovery, {duration}s\n");
    let outcome = fig9(duration, seed);
    println!("{}", render_outcome(&outcome));
    println!("Node-usage timeline (paper: 1 node -> detection ~120s -> 5 nodes):");
    for (t, n) in outcome.report.nodes_used.steps() {
        println!("  t={:>5}s  {} node(s)", t.as_secs(), n);
    }
}
