//! Fig. 9 — overload handling on Word Count: one worker on one node,
//! two concurrent corpus streams; T-Storm detects the overload and
//! reschedules onto more nodes; processing time drops sharply.
//!
//! Usage: `fig9 [duration_secs] [seed]` (defaults: 1000, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig9, render_outcome};
use tstorm_bench::fig_args_or_exit;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig9", 1000, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);

    println!("Fig. 9 reproduction: Word Count overload recovery, {duration}s\n");
    let outcome = fig9(duration, seed);
    println!("{}", render_outcome(&outcome));
    println!("Node-usage timeline (paper: 1 node -> detection ~120s -> 5 nodes):");
    for (t, n) in outcome.report.nodes_used.steps() {
        println!("  t={:>5}s  {} node(s)", t.as_secs(), n);
    }
    ExitCode::SUCCESS
}
