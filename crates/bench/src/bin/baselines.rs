//! Scheduler baseline comparison (Section III / VI context): the same
//! Throughput Test run end-to-end under Storm's default scheduler, the
//! Aniello et al. DEBS'13 online/offline schedulers, and T-Storm's
//! Algorithm 1 — all through the identical system harness, differing
//! only in the algorithm installed in the schedule generator.
//!
//! Usage: `baselines [duration_secs] [seed]` (defaults: 600, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::{cluster10, paper_config};
use tstorm_bench::fig_args_or_exit;
use tstorm_core::{SystemMode, TStormSystem};
use tstorm_types::SimTime;
use tstorm_workloads::throughput::{self, ThroughputParams};

fn main() -> ExitCode {
    let args = match fig_args_or_exit("baselines", 600, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);
    let stable = SimTime::from_secs(duration / 2);

    println!(
        "Throughput Test under each scheduler, {duration}s (mean after {}s):\n",
        stable.as_secs()
    );
    println!(
        "{:<18} {:>12} {:>8} {:>8} {:>9}",
        "scheduler", "avg ms", "nodes", "resched", "failed"
    );
    for (mode, scheduler) in [
        (SystemMode::StormDefault, "storm-default"),
        (SystemMode::TStorm, "aniello-offline"),
        (SystemMode::TStorm, "aniello-online"),
        (SystemMode::TStorm, "t-storm"),
        (SystemMode::TStorm, "t-storm-ls"),
    ] {
        let params = ThroughputParams::paper();
        let topo = throughput::topology(&params).expect("valid");
        let config = paper_config(mode, 1.7, seed).with_scheduler(scheduler);
        let mut system = TStormSystem::new(cluster10(), config).expect("valid");
        let mut factory = throughput::factory(&params, seed);
        system.submit(&topo, &mut factory).expect("submits");
        system.start().expect("starts");
        system
            .run_until(SimTime::from_secs(duration))
            .expect("runs");
        let report = system.report(scheduler);
        println!(
            "{:<18} {:>12.3} {:>8} {:>8} {:>9}",
            scheduler,
            report.mean_proc_time_after(stable).unwrap_or(f64::NAN),
            report.nodes_used.last().copied().unwrap_or(0),
            system.simulation().reassignments(),
            system.simulation().failed(),
        );
    }
    println!(
        "\nNote: under the T-Storm harness every algorithm benefits from the\n\
         min(Nu, Nw) initial assignment; differences isolate the re-scheduling\n\
         algorithm itself."
    );
    ExitCode::SUCCESS
}
