//! `inspect` — renders a flight recording produced by
//! `tstorm --flight-recorder PATH`.
//!
//! ```text
//! inspect RECORDING.jsonl [--section breakdown|heatmap|timeline|windows|lanes]...
//! ```
//!
//! Reads the JSONL artifact back through [`tstorm_trace::parse_recording`]
//! and renders, in order:
//!
//! - the run's provenance (the `meta` line),
//! - the critical-path latency breakdown tables (the closing
//!   `critical_path` line: totals, per-component queue/service time,
//!   per-edge network time, intra- vs inter-node hop classes),
//! - a node-by-node ASCII traffic heatmap (network hops between node
//!   pairs on completed tuples' critical paths),
//! - the rebalance timeline (every `control` and `decision` line in
//!   virtual-time order),
//! - per-worker lane utilization (the `lanes` line written by runs
//!   with `--workers` above 1: frames, events rendered, roots
//!   decomposed and barrier stalls per observability lane).
//!
//! A missing, empty or versionless file exits non-zero with the
//! parser's `no recording: …` message so CI can distinguish "nothing
//! was recorded" from a rendering bug.

use std::fmt::Write as _;
use std::process::ExitCode;
use tstorm_trace::{parse_recording, JsonValue, RecordedRun};

/// Sections in render order; `--section` picks a subset.
const SECTIONS: &[&str] = &["breakdown", "heatmap", "timeline", "windows", "lanes"];

/// Per-table row cap. A scale recording (100+ nodes, 10k+ executors)
/// carries far more components/edges than a terminal table can hold;
/// tables keep the heaviest rows and say how many were dropped.
const MAX_TABLE_ROWS: usize = 16;

/// Heatmap dimension cap: above this many nodes only the busiest are
/// drawn, with a note counting the hops outside the shown sub-grid.
const MAX_HEATMAP_NODES: usize = 24;

/// Appends the dropped-rows note when a table was truncated.
fn note_dropped(out: &mut String, total: usize, metric: &str) {
    if total > MAX_TABLE_ROWS {
        let _ = writeln!(
            out,
            "  … {} more rows dropped (showing top {MAX_TABLE_ROWS} by {metric})",
            total - MAX_TABLE_ROWS,
        );
    }
}

fn main() -> ExitCode {
    let mut path: Option<String> = None;
    let mut sections: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--section" => match it.next() {
                Some(s) if SECTIONS.contains(&s.as_str()) => sections.push(s),
                Some(s) => {
                    eprintln!("error: unknown section `{s}` (expected one of {SECTIONS:?})");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("error: --section requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: inspect RECORDING.jsonl \
                     [--section breakdown|heatmap|timeline|windows|lanes]..."
                );
                return ExitCode::SUCCESS;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("error: unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("error: no recording: no file given (usage: inspect RECORDING.jsonl)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: no recording: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = match parse_recording(&text) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wanted: Vec<&str> = if sections.is_empty() {
        SECTIONS.to_vec()
    } else {
        sections.iter().map(String::as_str).collect()
    };
    print!("{}", render_meta(&run));
    for section in wanted {
        let body = match section {
            "breakdown" => render_breakdown(&run),
            "heatmap" => render_heatmap(&run),
            "timeline" => render_timeline(&run),
            "windows" => render_windows(&run),
            "lanes" => render_lanes(&run),
            _ => unreachable!("sections are validated at parse time"),
        };
        print!("{body}");
    }
    ExitCode::SUCCESS
}

/// Provenance header from the `meta` line, key order preserved by the
/// fields we care about; unknown provenance keys are skipped.
fn render_meta(run: &RecordedRun) -> String {
    let mut out = String::from("== recording ==\n");
    for key in [
        "scenario",
        "seed",
        "mode",
        "gamma",
        "nodes",
        "slots_per_node",
        "duration_secs",
        "workspace_version",
    ] {
        if let Some(v) = run.meta.get(key) {
            let rendered = match v {
                JsonValue::String(s) => s.clone(),
                JsonValue::Number(n) => trim_num(*n),
                JsonValue::Bool(b) => b.to_string(),
                _ => continue,
            };
            let _ = writeln!(out, "  {key:<18} {rendered}");
        }
    }
    let _ = writeln!(
        out,
        "  {:<18} {} window, {} decision, {} control",
        "lines",
        run.lines_of("window").len(),
        run.lines_of("decision").len(),
        run.lines_of("control").len(),
    );
    out
}

/// Critical-path breakdown tables from the closing `critical_path`
/// line's summary object.
fn render_breakdown(run: &RecordedRun) -> String {
    let mut out = String::from("\n== critical-path breakdown ==\n");
    let Some(summary) = run
        .lines_of("critical_path")
        .last()
        .and_then(|l| l.get("summary"))
    else {
        out.push_str("  (no critical_path line: run was recorded without --spans)\n");
        return out;
    };
    let roots = u(summary, "roots");
    if roots == 0 {
        out.push_str("  no completed roots observed\n");
        return out;
    }
    let per_root_ms = |key: &str| u(summary, key) as f64 / 1e3 / roots as f64;
    let measured = u(summary, "queue_us") + u(summary, "service_us") + u(summary, "network_us");
    let pct = |key: &str| {
        if measured == 0 {
            0.0
        } else {
            100.0 * u(summary, key) as f64 / measured as f64
        }
    };
    let _ = writeln!(
        out,
        "  {} roots, mean latency {:.3} ms, max {:.3} ms",
        roots,
        per_root_ms("latency_us"),
        u(summary, "max_latency_us") as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "  queue {:.3} ms/root ({:.1}%)  service {:.3} ms/root ({:.1}%)  network {:.3} ms/root ({:.1}%)",
        per_root_ms("queue_us"),
        pct("queue_us"),
        per_root_ms("service_us"),
        pct("service_us"),
        per_root_ms("network_us"),
        pct("network_us"),
    );
    let replayed = u(summary, "replayed_roots");
    if replayed > 0 {
        let _ = writeln!(
            out,
            "  {} replayed roots waited {:.3} ms total in the replay queue",
            replayed,
            u(summary, "replay_us") as f64 / 1e3,
        );
    }

    if let Some(components) = summary.get("components").and_then(JsonValue::as_array) {
        // Heaviest first: a scale recording carries more component rows
        // than a table can hold, so order by critical-path time.
        let mut rows: Vec<&JsonValue> = components.iter().collect();
        rows.sort_by_key(|c| std::cmp::Reverse(u(c, "queue_us") + u(c, "service_us")));
        let _ = writeln!(
            out,
            "\n  {:<18} {:>10} {:>12} {:>12}",
            "component", "segments", "queue(ms)", "service(ms)"
        );
        for c in rows.iter().take(MAX_TABLE_ROWS) {
            let _ = writeln!(
                out,
                "  {:<18} {:>10} {:>12.3} {:>12.3}",
                s(c, "component"),
                u(c, "segments"),
                u(c, "queue_us") as f64 / 1e3,
                u(c, "service_us") as f64 / 1e3,
            );
        }
        note_dropped(&mut out, rows.len(), "queue+service time");
    }
    if let Some(edges) = summary.get("edges").and_then(JsonValue::as_array) {
        let mut rows: Vec<&JsonValue> = edges.iter().collect();
        rows.sort_by_key(|e| std::cmp::Reverse(u(e, "network_us")));
        let _ = writeln!(
            out,
            "\n  {:<24} {:>8} {:>12} {:>12}",
            "edge", "hops", "network(ms)", "inter-node"
        );
        for e in rows.iter().take(MAX_TABLE_ROWS) {
            let hops = u(e, "hops");
            let inter = if hops == 0 {
                0.0
            } else {
                100.0 * u(e, "inter_node_hops") as f64 / hops as f64
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>12.3} {:>11.1}%",
                format!("{}->{}", s(e, "from"), s(e, "to")),
                hops,
                u(e, "network_us") as f64 / 1e3,
                inter,
            );
        }
        note_dropped(&mut out, rows.len(), "network time");
    }
    if let Some(classes) = summary.get("hop_classes").and_then(JsonValue::as_array) {
        let _ = writeln!(
            out,
            "\n  {:<12} {:>8} {:>12}",
            "hop class", "hops", "network(ms)"
        );
        for h in classes {
            let _ = writeln!(
                out,
                "  {:<12} {:>8} {:>12.3}",
                s(h, "class"),
                u(h, "hops"),
                u(h, "network_us") as f64 / 1e3,
            );
        }
    }
    out
}

/// Node-by-node traffic heatmap: network hops between node pairs on
/// completed tuples' critical paths, shaded by intensity.
fn render_heatmap(run: &RecordedRun) -> String {
    let mut out =
        String::from("\n== traffic heatmap (critical-path hops, from row to column) ==\n");
    let pairs = run
        .lines_of("critical_path")
        .last()
        .and_then(|l| l.get("summary"))
        .and_then(|s| s.get("node_pairs"))
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    if pairs.is_empty() {
        out.push_str("  (no node-pair data: run was recorded without --spans)\n");
        return out;
    }
    let mut max_node = 0u64;
    let mut cells: Vec<(u64, u64, u64)> = Vec::new();
    for p in pairs {
        let (from, to, hops) = (u(p, "from"), u(p, "to"), u(p, "hops"));
        max_node = max_node.max(from).max(to);
        cells.push((from, to, hops));
    }
    let n = (max_node + 1) as usize;
    let mut grid = vec![0u64; n * n];
    for (from, to, hops) in cells {
        grid[from as usize * n + to as usize] += hops;
    }
    // A scale recording has too many nodes for a full matrix: keep the
    // busiest rows/columns and account for the hops left out.
    let mut shown: Vec<usize> = (0..n).collect();
    if n > MAX_HEATMAP_NODES {
        let mut volume: Vec<(u64, usize)> = (0..n)
            .map(|k| ((0..n).map(|j| grid[k * n + j] + grid[j * n + k]).sum(), k))
            .collect();
        volume.sort_by_key(|&(v, k)| (std::cmp::Reverse(v), k));
        shown = volume
            .iter()
            .take(MAX_HEATMAP_NODES)
            .map(|&(_, k)| k)
            .collect();
        shown.sort_unstable();
        let total: u64 = grid.iter().sum();
        let mut kept = 0u64;
        for &r in &shown {
            for &c in &shown {
                kept += grid[r * n + c];
            }
        }
        let _ = writeln!(
            out,
            "  showing the {} busiest of {} nodes; {} hops fall outside the shown sub-grid",
            shown.len(),
            n,
            total - kept,
        );
    }
    let mut peak = 1u64;
    for &r in &shown {
        for &c in &shown {
            peak = peak.max(grid[r * n + c]);
        }
    }
    // Shade ramp, darkest last; zero stays blank.
    const RAMP: &[char] = &['.', ':', '-', '=', '+', '*', '#', '@'];
    out.push_str("        ");
    for &col in &shown {
        let _ = write!(out, "{col:>6}");
    }
    out.push('\n');
    for &row in &shown {
        let _ = write!(out, "  n{row:<4} ");
        for &col in &shown {
            let hops = grid[row * n + col];
            if hops == 0 {
                out.push_str("     .");
            } else {
                let shade = RAMP[((hops * (RAMP.len() as u64 - 1)) / peak) as usize];
                let _ = write!(out, "{:>5}{shade}", compact(hops));
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "  peak cell: {peak} hops; shade ramp {RAMP:?}");
    if let Some(last) = run.lines_of("window").last() {
        if let Some(top) = last.get("top_pairs").and_then(JsonValue::as_array) {
            if !top.is_empty() {
                out.push_str("\n  heaviest executor pairs (last window, tuples since start):\n");
                for p in top {
                    let _ = writeln!(
                        out,
                        "    {:<14} -> {:<14} {:>10}",
                        s(p, "from"),
                        s(p, "to"),
                        u(p, "tuples"),
                    );
                }
            }
        }
    }
    out
}

/// The rebalance timeline: `control` and `decision` lines merged in
/// virtual-time order.
fn render_timeline(run: &RecordedRun) -> String {
    let mut out = String::from("\n== rebalance timeline ==\n");
    // (t, file order, rendered) — stable sort keeps same-instant lines
    // in file order, which is causal order.
    let mut entries: Vec<(u64, usize, String)> = Vec::new();
    for (order, line) in run.lines.iter().enumerate() {
        let t = u(line, "t");
        match line.get("type").and_then(JsonValue::as_str) {
            Some("control") => {
                entries.push((
                    t,
                    order,
                    format!("{:<20} {}", s(line, "event"), s(line, "detail")),
                ));
            }
            Some("decision") => {
                let placements = line
                    .get("decisions")
                    .and_then(JsonValue::as_array)
                    .map_or(0, <[JsonValue]>::len);
                let mut text = format!(
                    "{:<20} epoch {} by {}: {} placements, objective {:.1}",
                    "schedule_decision",
                    u(line, "epoch"),
                    s(line, "algorithm"),
                    placements,
                    f(line, "objective"),
                );
                if let Some(notes) = line.get("notes").and_then(JsonValue::as_array) {
                    for note in notes {
                        if let Some(note) = note.as_str() {
                            let _ = write!(text, "\n    {:<20} note: {note}", "");
                        }
                    }
                }
                entries.push((t, order, text));
            }
            _ => {}
        }
    }
    if entries.is_empty() {
        out.push_str("  (no control or decision lines recorded)\n");
        return out;
    }
    entries.sort_by_key(|(t, order, _)| (*t, *order));
    for (t, _, text) in entries {
        let _ = writeln!(out, "  [{:>10.3}s] {text}", t as f64 / 1e6);
    }
    out
}

/// Windowed cluster state: one row per `window` line.
fn render_windows(run: &RecordedRun) -> String {
    let mut out = String::from("\n== windows ==\n");
    let windows = run.lines_of("window");
    if windows.is_empty() {
        out.push_str("  (no window lines recorded)\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:>10} {:>9} {:>11} {:>11} {:>10} {:>9}",
        "t(s)", "max cpu", "mean cpu", "deep queue", "high water", "diverged"
    );
    for w in windows {
        let cpus: Vec<f64> = w
            .get("nodes")
            .and_then(JsonValue::as_array)
            .map(|nodes| nodes.iter().map(|node| f(node, "cpu")).collect())
            .unwrap_or_default();
        let max_cpu = cpus.iter().copied().fold(0.0f64, f64::max);
        let mean_cpu = if cpus.is_empty() {
            0.0
        } else {
            cpus.iter().sum::<f64>() / cpus.len() as f64
        };
        let deep = w
            .get("queues")
            .and_then(JsonValue::as_array)
            .and_then(|q| q.first())
            .map_or(0, |q| u(q, "depth"));
        let diverged = w
            .get("belief_divergence")
            .and_then(JsonValue::as_array)
            .map_or(0, <[JsonValue]>::len);
        let _ = writeln!(
            out,
            "  {:>10.1} {:>8.1}% {:>10.1}% {:>11} {:>10} {:>9}",
            u(w, "t") as f64 / 1e6,
            max_cpu * 100.0,
            mean_cpu * 100.0,
            deep,
            u(w, "event_queue_high_water"),
            diverged,
        );
    }
    out
}

/// Per-worker lane utilization from the `lanes` line written by
/// frame-parallel runs: frames dispatched, trace events rendered, span
/// roots decomposed and barrier stalls (frames in which the lane
/// received no work) per observability lane.
fn render_lanes(run: &RecordedRun) -> String {
    let mut out = String::from("\n== lane utilization ==\n");
    let lanes_lines = run.lines_of("lanes");
    let Some(line) = lanes_lines.last() else {
        out.push_str("  (no lanes line: run was recorded with --workers 1)\n");
        return out;
    };
    let _ = writeln!(out, "  {} observability lane(s)", u(line, "workers"));
    let Some(lanes) = line.get("lanes").and_then(JsonValue::as_array) else {
        out.push_str("  (lanes line carries no per-lane stats)\n");
        return out;
    };
    let _ = writeln!(
        out,
        "  {:>6} {:>10} {:>10} {:>8} {:>14} {:>10}",
        "lane", "frames", "events", "roots", "barrier stalls", "busy"
    );
    for (i, lane) in lanes.iter().enumerate() {
        let frames = u(lane, "frames");
        let idle = u(lane, "idle_frames");
        let busy = if frames == 0 {
            0.0
        } else {
            100.0 * (frames - idle.min(frames)) as f64 / frames as f64
        };
        let _ = writeln!(
            out,
            "  {i:>6} {frames:>10} {:>10} {:>8} {idle:>14} {busy:>9.1}%",
            u(lane, "events"),
            u(lane, "roots"),
        );
    }
    out
}

/// `obj[key]` as u64 (0 when absent or non-numeric).
fn u(v: &JsonValue, key: &str) -> u64 {
    f(v, key) as u64
}

/// `obj[key]` as f64 (0.0 when absent or non-numeric).
fn f(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

/// `obj[key]` as a string (empty when absent).
fn s(v: &JsonValue, key: &str) -> String {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_owned()
}

/// Renders a JSON number without a trailing `.0` for integers.
fn trim_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Compacts a count for a 5-character heatmap cell (`12345`, `99k`, `3M`).
fn compact(n: u64) -> String {
    if n < 100_000 {
        n.to_string()
    } else if n < 100_000_000 {
        format!("{}k", n / 1_000)
    } else {
        format!("{}M", n / 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tstorm_trace::FlightRecorder;
    use tstorm_types::SimTime;

    /// A synthetic recording exercising every section.
    fn recording() -> RecordedRun {
        let mut rec = FlightRecorder::new(Vec::new());
        rec.meta(|o| {
            o.str("scenario", "wordcount")
                .u64("seed", 42)
                .str("mode", "t-storm")
                .f64("gamma", 2.0)
                .u64("nodes", 4);
        });
        rec.line("window", SimTime::from_secs(20), |o| {
            o.raw("executors", r#"[{"id":"e0","mhz":120.5}]"#)
                .raw(
                    "nodes",
                    r#"[{"id":"n0","cpu":0.5,"nic_tx_bytes":1000},{"id":"n1","cpu":0.25,"nic_tx_bytes":0}]"#,
                )
                .raw("queues", r#"[{"id":"e0","depth":7}]"#)
                .u64("event_queue_high_water", 31)
                .raw("top_pairs", r#"[{"from":"splitter[2]","to":"counter[5]","tuples":900}]"#)
                .raw("belief_divergence", "[]");
        });
        rec.line("decision", SimTime::from_secs(25), |o| {
            o.u64("epoch", 1)
                .str("algorithm", "t-storm")
                .f64("objective", 123.5)
                .raw("notes", r#"["note one"]"#)
                .raw(
                    "decisions",
                    r#"[{"executor":"e0","slot":"n0:0","node":"n0","load_mhz":12.0,"traffic_total":4.0,"objective_delta":0.0,"tie_break":"opened a fresh node"}]"#,
                );
        });
        rec.line("control", SimTime::from_secs(30), |o| {
            o.str("event", "schedule_published")
                .str("detail", "epoch 1 published by t-storm");
        });
        rec.line("critical_path", SimTime::from_secs(60), |o| {
            o.raw(
                "summary",
                r#"{"roots":10,"replayed_roots":1,"latency_us":50000,"max_latency_us":9000,"queue_us":20000,"service_us":20000,"network_us":10000,"replay_us":500,"dropped_breakdowns":0,"components":[{"component":"counter","segments":10,"queue_us":20000,"service_us":20000}],"edges":[{"from":"splitter","to":"counter","hops":10,"network_us":10000,"inter_node_hops":4}],"node_pairs":[{"from":0,"to":1,"hops":4,"network_us":8000},{"from":1,"to":1,"hops":6,"network_us":2000}],"hop_classes":[{"class":"inter-node","hops":4,"network_us":8000},{"class":"intra-node","hops":6,"network_us":2000}]}"#,
            );
        });
        let bytes = rec.into_inner().unwrap();
        parse_recording(&String::from_utf8(bytes).unwrap()).expect("synthetic recording parses")
    }

    #[test]
    fn meta_renders_provenance_and_line_counts() {
        let out = render_meta(&recording());
        assert!(out.contains("scenario"), "{out}");
        assert!(out.contains("wordcount"), "{out}");
        assert!(out.contains("1 window, 1 decision, 1 control"), "{out}");
    }

    #[test]
    fn breakdown_renders_totals_components_edges_and_classes() {
        let out = render_breakdown(&recording());
        assert!(out.contains("10 roots"), "{out}");
        // 50000 us over 10 roots = 5 ms mean.
        assert!(out.contains("mean latency 5.000 ms"), "{out}");
        assert!(out.contains("counter"), "{out}");
        assert!(out.contains("splitter->counter"), "{out}");
        assert!(out.contains("inter-node"), "{out}");
        assert!(out.contains("1 replayed roots"), "{out}");
    }

    #[test]
    fn breakdown_without_spans_says_so() {
        let run = parse_recording("{\"type\":\"meta\",\"v\":1}\n").unwrap();
        let out = render_breakdown(&run);
        assert!(out.contains("without --spans"), "{out}");
    }

    #[test]
    fn heatmap_shades_node_pairs_and_lists_heavy_executor_pairs() {
        let out = render_heatmap(&recording());
        // Peak cell (1->1, 6 hops) gets the darkest shade.
        assert!(out.contains("6@"), "{out}");
        assert!(out.contains('4'), "{out}");
        assert!(out.contains("splitter[2]"), "{out}");
        assert!(out.contains("900"), "{out}");
    }

    #[test]
    fn timeline_merges_control_and_decision_lines_in_time_order() {
        let out = render_timeline(&recording());
        let decision = out.find("schedule_decision").expect("decision entry");
        let control = out.find("schedule_published").expect("control entry");
        assert!(
            decision < control,
            "decision at 25s precedes control at 30s: {out}"
        );
        assert!(out.contains("note: note one"), "{out}");
        assert!(out.contains("epoch 1 by t-storm: 1 placements"), "{out}");
    }

    #[test]
    fn windows_summarise_cpu_queues_and_divergence() {
        let out = render_windows(&recording());
        assert!(out.contains("50.0%"), "{out}");
        // Mean of 0.5 and 0.25.
        assert!(out.contains("37.5%"), "{out}");
        assert!(out.contains("31"), "{out}");
    }

    /// A scale-shaped recording: more nodes than the heatmap cap and
    /// more components than the table cap.
    fn scale_recording() -> RecordedRun {
        let mut components = String::from("[");
        for i in 0..30 {
            if i > 0 {
                components.push(',');
            }
            components.push_str(&format!(
                r#"{{"component":"bolt{i}","segments":10,"queue_us":{},"service_us":1000}}"#,
                (30 - i) * 1000,
            ));
        }
        components.push(']');
        // Node i talks to node i+1; node 0 -> 1 dominates.
        let mut pairs = String::from("[");
        for i in 0..30u64 {
            if i > 0 {
                pairs.push(',');
            }
            let hops = if i == 0 { 1000 } else { 10 };
            pairs.push_str(&format!(
                r#"{{"from":{i},"to":{},"hops":{hops},"network_us":100}}"#,
                i + 1,
            ));
        }
        pairs.push(']');
        let summary = format!(
            r#"{{"roots":10,"latency_us":50000,"max_latency_us":9000,"queue_us":20000,"service_us":20000,"network_us":10000,"components":{components},"node_pairs":{pairs}}}"#,
        );
        let mut rec = FlightRecorder::new(Vec::new());
        rec.meta(|o| {
            o.str("scenario", "scale-100").u64("seed", 42);
        });
        rec.line("critical_path", SimTime::from_secs(60), |o| {
            o.raw("summary", &summary);
        });
        let bytes = rec.into_inner().unwrap();
        parse_recording(&String::from_utf8(bytes).unwrap()).expect("synthetic recording parses")
    }

    #[test]
    fn breakdown_truncates_to_top_rows_with_a_note() {
        let out = render_breakdown(&scale_recording());
        // Heaviest component (bolt0, 30k us queue) survives; the
        // lightest (bolt29) is dropped, and the note counts the rest.
        assert!(out.contains("bolt0"), "{out}");
        assert!(!out.contains("bolt29"), "{out}");
        assert!(
            out.contains("… 14 more rows dropped (showing top 16 by queue+service time)"),
            "{out}"
        );
    }

    #[test]
    fn heatmap_truncates_to_busiest_nodes_with_a_note() {
        let out = render_heatmap(&scale_recording());
        assert!(out.contains("showing the 24 busiest of 31 nodes"), "{out}");
        // The dominant pair's hops stay in the shown sub-grid.
        assert!(out.contains("1000"), "{out}");
        // 31 nodes carry 1000 + 29*10 = 1290 hops; the busiest 24 keep
        // all heavy cells, the dropped note accounts for the remainder.
        assert!(
            out.contains("hops fall outside the shown sub-grid"),
            "{out}"
        );
    }

    #[test]
    fn small_runs_render_the_full_matrix_without_notes() {
        let out = render_heatmap(&recording());
        assert!(!out.contains("busiest"), "{out}");
        let bd = render_breakdown(&recording());
        assert!(!bd.contains("rows dropped"), "{bd}");
    }

    #[test]
    fn lanes_render_per_worker_utilization() {
        let mut rec = FlightRecorder::new(Vec::new());
        rec.meta(|o| {
            o.str("scenario", "wordcount").u64("seed", 42);
        });
        rec.line("lanes", SimTime::from_secs(60), |o| {
            o.u64("workers", 2).raw(
                "lanes",
                r#"[{"frames":10,"events":90,"roots":5,"idle_frames":2},{"frames":10,"events":40,"roots":0,"idle_frames":5}]"#,
            );
        });
        let bytes = rec.into_inner().unwrap();
        let run = parse_recording(&String::from_utf8(bytes).unwrap()).expect("parses");
        let out = render_lanes(&run);
        assert!(out.contains("2 observability lane(s)"), "{out}");
        assert!(out.contains("barrier stalls"), "{out}");
        // Lane 0: 10 frames, 2 idle -> 80% busy. Lane 1: 5 idle -> 50%.
        assert!(out.contains("80.0%"), "{out}");
        assert!(out.contains("50.0%"), "{out}");
        assert!(out.contains("90"), "{out}");
    }

    #[test]
    fn lanes_section_is_graceful_when_absent() {
        let out = render_lanes(&recording());
        assert!(out.contains("recorded with --workers 1"), "{out}");
    }

    #[test]
    fn compact_counts_fit_heatmap_cells() {
        assert_eq!(compact(999), "999");
        assert_eq!(compact(99_999), "99999");
        assert_eq!(compact(1_500_000), "1500k");
        assert_eq!(compact(200_000_000), "200M");
    }
}
