//! Fig. 3 — impact of overloading a worker node: 5 spout executors feed
//! 1 bolt executor per stage on a single node; queues grow, processing
//! time skyrockets, tuples fail.
//!
//! Usage: `fig3 [duration_secs] [seed]` (defaults: 180, 42 — the paper
//! plots 180 s).

use tstorm_bench::experiments::{fig3, render_outcome};

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(180);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Fig. 3 reproduction: overloaded single node, {duration}s\n");
    let outcome = fig3(duration, seed);
    println!("{}", render_outcome(&outcome));
    println!("(a) average processing time rises without bound; (b) failed-tuple count:");
    for (t, n) in outcome.report.failed.cumulative() {
        println!("  {:>5}s  {:>8} failed (cumulative)", t.as_secs(), n);
    }
}
