//! Fig. 3 — impact of overloading a worker node: 5 spout executors feed
//! 1 bolt executor per stage on a single node; queues grow, processing
//! time skyrockets, tuples fail.
//!
//! Usage: `fig3 [duration_secs] [seed]` (defaults: 180, 42 — the paper
//! plots 180 s).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig3, render_outcome};
use tstorm_bench::fig_args_or_exit;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig3", 180, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);

    println!("Fig. 3 reproduction: overloaded single node, {duration}s\n");
    let outcome = fig3(duration, seed);
    println!("{}", render_outcome(&outcome));
    println!("(a) average processing time rises without bound; (b) failed-tuple count:");
    for (t, n) in outcome.report.failed.cumulative() {
        println!("  {:>5}s  {:>8} failed (cumulative)", t.as_secs(), n);
    }
    ExitCode::SUCCESS
}
