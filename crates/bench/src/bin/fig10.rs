//! Fig. 10 — overload handling on Log Stream Processing: one worker on
//! one node, two concurrent IIS log streams; T-Storm recovers onto ~8
//! nodes.
//!
//! Usage: `fig10 [duration_secs] [seed]` (defaults: 1000, 42).

use tstorm_bench::experiments::{fig10, render_outcome};

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);

    println!("Fig. 10 reproduction: Log Stream overload recovery, {duration}s\n");
    let outcome = fig10(duration, seed);
    println!("{}", render_outcome(&outcome));
    println!("Node-usage timeline (paper: 1 node -> detection ~164s -> 8 nodes):");
    for (t, n) in outcome.report.nodes_used.steps() {
        println!("  t={:>5}s  {} node(s)", t.as_secs(), n);
    }
}
