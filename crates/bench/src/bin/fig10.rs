//! Fig. 10 — overload handling on Log Stream Processing: one worker on
//! one node, two concurrent IIS log streams; T-Storm recovers onto ~8
//! nodes.
//!
//! Usage: `fig10 [duration_secs] [seed]` (defaults: 1000, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig10, render_outcome};
use tstorm_bench::fig_args_or_exit;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig10", 1000, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);

    println!("Fig. 10 reproduction: Log Stream overload recovery, {duration}s\n");
    let outcome = fig10(duration, seed);
    println!("{}", render_outcome(&outcome));
    println!("Node-usage timeline (paper: 1 node -> detection ~164s -> 8 nodes):");
    for (t, n) in outcome.report.nodes_used.steps() {
        println!("  t={:>5}s  {} node(s)", t.as_secs(), n);
    }
    ExitCode::SUCCESS
}
