//! Fig. 8 — Log Stream Processing: Storm vs T-Storm at γ ∈ {1, 1.7, 2}
//! (10, 7 and 5 worker nodes in the paper).
//!
//! Usage: `fig8 [duration_secs] [seed]` (defaults: 1000, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig8, render_outcome};
use tstorm_bench::fig_args_or_exit;
use tstorm_core::SystemMode;
use tstorm_metrics::ComparisonRow;
use tstorm_types::SimTime;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig8", 1000, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);
    let stable = SimTime::from_secs(duration / 2);

    println!("Fig. 8 reproduction: Log Stream Processing, {duration}s\n");
    let storm = fig8(SystemMode::StormDefault, 1.0, duration, seed);
    println!("{}", render_outcome(&storm));

    let mut rows = Vec::new();
    for gamma in [1.0, 1.7, 2.0] {
        let tstorm = fig8(SystemMode::TStorm, gamma, duration, seed);
        println!("{}", render_outcome(&tstorm));
        rows.extend(ComparisonRow::from_reports(
            format!("Fig.8 gamma={gamma}"),
            &storm.report,
            &tstorm.report,
            stable,
        ));
    }
    println!("{}", ComparisonRow::render_table(&rows));
    println!("Paper: 54% / 27% / ~0% speedup at gamma 1 / 1.7 / 2 (10 / 7 / 5 nodes).");
    ExitCode::SUCCESS
}
