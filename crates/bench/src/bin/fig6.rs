//! Fig. 6 — Word Count (stream version): Storm vs T-Storm at
//! γ ∈ {1, 1.8, 2.2} (10, 7 and 5 worker nodes in the paper).
//!
//! Usage: `fig6 [duration_secs] [seed]` (defaults: 1000, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig6, render_outcome};
use tstorm_bench::fig_args_or_exit;
use tstorm_core::SystemMode;
use tstorm_metrics::ComparisonRow;
use tstorm_types::SimTime;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig6", 1000, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);
    let stable = SimTime::from_secs(duration / 2);

    println!("Fig. 6 reproduction: Word Count, {duration}s\n");
    let storm = fig6(SystemMode::StormDefault, 1.0, duration, seed);
    println!("{}", render_outcome(&storm));

    let mut rows = Vec::new();
    for gamma in [1.0, 1.8, 2.2] {
        let tstorm = fig6(SystemMode::TStorm, gamma, duration, seed);
        println!("{}", render_outcome(&tstorm));
        rows.extend(ComparisonRow::from_reports(
            format!("Fig.6 gamma={gamma}"),
            &storm.report,
            &tstorm.report,
            stable,
        ));
    }
    println!("{}", ComparisonRow::render_table(&rows));
    println!("Paper: 49% / 42% / 35% speedup at gamma 1 / 1.8 / 2.2 (10 / 7 / 5 nodes).");
    ExitCode::SUCCESS
}
