//! Fig. 5 — Throughput Test: Storm vs T-Storm at γ ∈ {1, 1.7, 6}
//! (10, 7 and 2 worker nodes in the paper).
//!
//! Usage: `fig5 [duration_secs] [seed]` (defaults: 1000, 42).

use std::process::ExitCode;
use tstorm_bench::experiments::{fig5, render_outcome};
use tstorm_bench::fig_args_or_exit;
use tstorm_core::SystemMode;
use tstorm_metrics::ComparisonRow;
use tstorm_types::SimTime;

fn main() -> ExitCode {
    let args = match fig_args_or_exit("fig5", 1000, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);
    let stable = SimTime::from_secs(duration / 2);

    println!("Fig. 5 reproduction: Throughput Test, {duration}s\n");
    let storm = fig5(SystemMode::StormDefault, 1.0, duration, seed);
    println!("{}", render_outcome(&storm));

    let mut rows = Vec::new();
    for gamma in [1.0, 1.7, 6.0] {
        let tstorm = fig5(SystemMode::TStorm, gamma, duration, seed);
        println!("{}", render_outcome(&tstorm));
        rows.extend(ComparisonRow::from_reports(
            format!("Fig.5 gamma={gamma}"),
            &storm.report,
            &tstorm.report,
            stable,
        ));
    }
    println!("{}", ComparisonRow::render_table(&rows));
    println!("Paper: ~83-84% speedup at gamma 1/1.7 (10/7 nodes); similar at gamma 6 (2 nodes).");
    ExitCode::SUCCESS
}
