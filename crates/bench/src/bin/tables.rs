//! Table II — the common experimental settings, rendered from the live
//! configuration defaults.
//!
//! Usage: `tables` (no arguments).

use std::process::ExitCode;
use tstorm_bench::experiments::table2;

fn main() -> ExitCode {
    let extra: Vec<String> = std::env::args().skip(1).collect();
    if extra.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: tables\n\nRenders Table II from the live configuration defaults.");
        return ExitCode::SUCCESS;
    }
    if !extra.is_empty() {
        eprintln!("tables: unexpected argument(s) {extra:?}\nusage: tables");
        return ExitCode::from(2);
    }
    println!("{}", table2());
    ExitCode::SUCCESS
}
