//! Table II — the common experimental settings, rendered from the live
//! configuration defaults.

use tstorm_bench::experiments::table2;

fn main() {
    println!("{}", table2());
}
