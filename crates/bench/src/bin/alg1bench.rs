//! `alg1bench` — std-timer measurement of Algorithm 1's full solve
//! versus the incremental replay path, at scale.
//!
//! Criterion is stubbed offline, so this binary measures with
//! `std::time::Instant` directly: for each executor count it times (a)
//! the full solve on fresh inputs, and (b) the incremental replay on
//! load-only perturbations of a cached solve, verifying on every
//! iteration that the replay actually took the incremental path and
//! (once per size) that its assignment equals a fresh full re-solve.
//!
//! ```text
//! alg1bench [--ne N[,N]...] [--nodes K] [--slots S] [--iters I]
//!           [--fraction F]
//! ```

use std::process::ExitCode;
use std::time::Instant;
use tstorm_cluster::ClusterSpec;
use tstorm_sched::{
    ExecutorInfo, SchedParams, Scheduler, SchedulingInput, TStormScheduler, TrafficMatrix,
};
use tstorm_types::{ComponentId, ExecutorId, Mhz, TopologyId};

/// A chain of `ne` executors over `nodes`×`slots_per_node` slots — the
/// same shape the `alg1_scaling` criterion bench sweeps.
fn chain_input(ne: u32, nodes: u32, slots_per_node: u32) -> SchedulingInput {
    let cluster = ClusterSpec::homogeneous(nodes, slots_per_node, Mhz::new(8000.0)).expect("valid");
    let executors: Vec<ExecutorInfo> = (0..ne)
        .map(|i| {
            ExecutorInfo::new(
                ExecutorId::new(i),
                TopologyId::new(0),
                ComponentId::new(i % 8),
                Mhz::new(20.0),
            )
        })
        .collect();
    let mut traffic = TrafficMatrix::new();
    for i in 0..ne.saturating_sub(1) {
        traffic.set(
            ExecutorId::new(i),
            ExecutorId::new(i + 1),
            100.0 + f64::from(i),
        );
    }
    SchedulingInput::new(
        cluster,
        executors,
        traffic,
        SchedParams::default().with_gamma(2.0),
    )
}

/// Deterministically perturbs the loads of roughly `fraction` of the
/// executors (LCG-driven, seeded) — the load-only delta the monitor
/// hands the scheduler between windows.
fn perturb_loads(input: &mut SchedulingInput, seed: u64, fraction: f64) {
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for e in &mut input.executors {
        if next() < fraction {
            let factor = 0.8 + 0.4 * next();
            *e = ExecutorInfo::new(
                e.id,
                e.topology,
                e.component,
                Mhz::new(e.load.get() * factor),
            );
        }
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

struct Options {
    ne: Vec<u32>,
    nodes: u32,
    slots: u32,
    iters: u32,
    fraction: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        ne: vec![1_000, 5_000, 10_000],
        nodes: 100,
        slots: 4,
        iters: 9,
        fraction: 0.05,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--ne" => {
                opts.ne = value("--ne")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u32>()
                            .ok()
                            .filter(|n| *n > 1)
                            .ok_or_else(|| format!("--ne: `{s}` is not a valid executor count"))
                    })
                    .collect::<Result<Vec<u32>, String>>()?;
            }
            "--nodes" => {
                opts.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| "--nodes".to_owned())?
            }
            "--slots" => {
                opts.slots = value("--slots")?
                    .parse()
                    .map_err(|_| "--slots".to_owned())?
            }
            "--iters" => {
                opts.iters = value("--iters")?
                    .parse()
                    .map_err(|_| "--iters".to_owned())?
            }
            "--fraction" => {
                opts.fraction = value("--fraction")?
                    .parse()
                    .map_err(|_| "--fraction must be a number".to_owned())?;
                if !(0.0..=0.25).contains(&opts.fraction) {
                    return Err("--fraction must be within [0, 0.25] (the incremental gate)".into());
                }
            }
            "--help" | "-h" => {
                return Err(
                    "usage: alg1bench [--ne N[,N]...] [--nodes K] [--slots S] [--iters I] \
                     [--fraction F]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "Algorithm 1 full solve vs incremental replay — {} nodes x {} slots, \
         {:.0}% of loads perturbed per window, median of {} iters",
        opts.nodes,
        opts.slots,
        opts.fraction * 100.0,
        opts.iters,
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9}",
        "Ne", "full (ms)", "incr (ms)", "speedup"
    );
    for &ne in &opts.ne {
        // Full solve: incremental disabled, every call re-runs Algorithm 1.
        let mut full = TStormScheduler::new();
        full.set_incremental(false);
        let mut full_times = Vec::new();
        let mut input = chain_input(ne, opts.nodes, opts.slots);
        for i in 0..opts.iters {
            perturb_loads(&mut input, u64::from(i) + 1, opts.fraction);
            let t = Instant::now();
            let a = full.schedule(&input).expect("feasible");
            full_times.push(t.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(a);
        }

        // Incremental: prime the cache with one full solve, then time
        // replays over load-only perturbations.
        let mut inc = TStormScheduler::new();
        let mut input = chain_input(ne, opts.nodes, opts.slots);
        inc.schedule(&input).expect("feasible");
        let mut inc_times = Vec::new();
        for i in 0..opts.iters {
            perturb_loads(&mut input, u64::from(i) + 1, opts.fraction);
            let t = Instant::now();
            let a = inc.schedule(&input).expect("feasible");
            inc_times.push(t.elapsed().as_secs_f64() * 1e3);
            assert!(
                inc.last_solve_was_incremental(),
                "Ne={ne} iter {i}: replay fell back to a full solve"
            );
            std::hint::black_box(&a);
            if i == 0 {
                // Exactness spot-check: the replay must equal a fresh
                // full re-solve of the same input.
                let mut fresh = TStormScheduler::new();
                fresh.set_incremental(false);
                let b = fresh.schedule(&input).expect("feasible");
                assert_eq!(a, b, "Ne={ne}: incremental replay diverged from full solve");
            }
        }

        let f = median(full_times);
        let i = median(inc_times);
        println!("{ne:>10} {f:>14.3} {i:>14.3} {:>8.1}x", f / i);
    }
    ExitCode::SUCCESS
}
