//! `tstorm-sweep` — run a multi-seed scenario grid on a thread pool and
//! aggregate the results deterministically.
//!
//! Usage:
//!
//! ```text
//! sweep [--workloads LIST] [--modes LIST] [--gammas LIST] [--seeds N]
//!       [--base-seed N] [--duration SECS] [--threads N]
//!       [--fault SPEC]... [--out PATH]
//! ```
//!
//! Defaults: `--workloads throughput --modes storm,tstorm
//! --gammas 1.0,1.7 --seeds 3 --base-seed 42 --duration 120 --threads 1
//! --out SWEEP_results.json`.
//!
//! The JSON artifact is a pure function of the grid and the per-trial
//! reports — byte-identical for any `--threads` value. Wall-clock time
//! is printed to stdout only, never written into the artifact.

use std::process::ExitCode;
use std::time::Instant;
use tstorm_bench::experiments::AppWorkload;
use tstorm_bench::sweep::{mode_from_name, render_sweep_json, run_sweep, SweepGrid};
use tstorm_metrics::render_aggregate_table;

const USAGE: &str = "usage: sweep [--workloads LIST] [--modes LIST] [--gammas LIST]\n\
     \x20            [--seeds N] [--base-seed N] [--duration SECS] [--threads N]\n\
     \x20            [--fault SPEC]... [--out PATH]\n\
\n\
  --workloads   comma list of throughput,wordcount,logstream (default: throughput)\n\
  --modes       comma list of storm,tstorm (default: storm,tstorm)\n\
  --gammas      comma list of consolidation factors (default: 1.0,1.7)\n\
  --seeds       trials per grid cell (default: 3)\n\
  --base-seed   base seed for per-trial derivation (default: 42)\n\
  --duration    virtual seconds per trial (default: 120)\n\
  --threads     worker threads; 1 runs inline (default: 1)\n\
  --fault       fault spec applied to every trial; repeatable\n\
  --out         path for the SWEEP_*.json artifact (default: SWEEP_results.json)";

struct Cli {
    grid: SweepGrid,
    threads: usize,
    out: String,
}

fn fail(msg: &str) -> Result<Cli, String> {
    Err(msg.to_owned())
}

fn parse_u64(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("sweep: invalid value `{value}` for {flag} (expected an integer)"))
}

fn parse_cli(args: &[String]) -> Result<Option<Cli>, String> {
    let mut grid = SweepGrid::default();
    let mut threads = 1usize;
    let mut out = "SWEEP_results.json".to_owned();
    let mut faults: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("sweep: {flag} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--workloads" => {
                let v = value_of("--workloads")?;
                grid.workloads = v
                    .split(',')
                    .map(|name| {
                        AppWorkload::from_name(name).ok_or_else(|| {
                            format!(
                                "sweep: unknown workload `{name}` \
                                 (expected throughput, wordcount or logstream)"
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--modes" => {
                let v = value_of("--modes")?;
                grid.modes = v
                    .split(',')
                    .map(|name| {
                        mode_from_name(name).ok_or_else(|| {
                            format!("sweep: unknown mode `{name}` (expected storm or tstorm)")
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--gammas" => {
                let v = value_of("--gammas")?;
                grid.gammas = v
                    .split(',')
                    .map(|g| {
                        g.parse::<f64>()
                            .ok()
                            .filter(|g| g.is_finite() && *g > 0.0)
                            .ok_or_else(|| format!("sweep: invalid gamma `{g}`"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--seeds" => {
                let v = value_of("--seeds")?;
                grid.seeds = u32::try_from(parse_u64("--seeds", &v)?)
                    .map_err(|_| format!("sweep: --seeds value `{v}` is out of range"))?;
            }
            "--base-seed" => {
                let v = value_of("--base-seed")?;
                grid.base_seed = parse_u64("--base-seed", &v)?;
            }
            "--duration" => {
                let v = value_of("--duration")?;
                grid.duration_secs = parse_u64("--duration", &v)?;
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let t = parse_u64("--threads", &v)?;
                if t == 0 {
                    return fail("sweep: --threads must be at least 1").map(Some);
                }
                threads = usize::try_from(t)
                    .map_err(|_| format!("sweep: --threads value `{v}` is out of range"))?;
            }
            "--fault" => faults.push(value_of("--fault")?),
            "--out" => out = value_of("--out")?,
            other => {
                return Err(format!("sweep: unknown argument `{other}`"));
            }
        }
    }
    grid.faults = faults;
    Ok(Some(Cli { grid, threads, out }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let trial_count = match cli.grid.expand() {
        Ok(specs) => specs.len(),
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "Sweep: {} trial(s) across {} workload(s) x {} mode(s) x {} gamma(s), \
         {} seed(s)/cell, {}s each, {} thread(s)\n",
        trial_count,
        cli.grid.workloads.len(),
        cli.grid.modes.len(),
        cli.grid.gammas.len(),
        cli.grid.seeds,
        cli.grid.duration_secs,
        cli.threads,
    );

    let started = Instant::now();
    let results = match run_sweep(&cli.grid, cli.threads) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    print!("{}", render_aggregate_table(&results.aggregates));
    println!(
        "\n{} trial(s) in {:.2}s wall clock on {} thread(s)",
        results.trials.len(),
        elapsed.as_secs_f64(),
        cli.threads,
    );

    let json = render_sweep_json(&results);
    if let Err(e) = std::fs::write(&cli.out, &json) {
        eprintln!("sweep: failed to write {}: {e}", cli.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({} bytes)", cli.out, json.len());
    ExitCode::SUCCESS
}
