//! Multi-topology scheduling: the problem statement of Section IV-C is
//! over "M topologies"; this binary runs Throughput Test and Word Count
//! *concurrently* on the same 10-node cluster under plain Storm and
//! under T-Storm, showing that Algorithm 1 handles the combined executor
//! population (one slot per topology per node, shared capacity).
//!
//! Usage: `multi [duration_secs] [seed]` (defaults: 600, 42).

use tstorm_bench::experiments::{cluster10, paper_config, WORDCOUNT_LINES_PER_SEC};
use tstorm_core::{SystemMode, TStormSystem};
use tstorm_types::SimTime;
use tstorm_workloads::throughput::{self, ThroughputParams};
use tstorm_workloads::wordcount::{self, WordCountParams, WordCountState};

fn run(mode: SystemMode, duration: u64, seed: u64) {
    // gamma = 1.3 for the *combined* executor population: with two
    // topologies sharing nodes, the paper's single-topology gamma = 1.7
    // over-consolidates (a node ends up hosting most of Word Count's
    // heavy bolts next to Throughput Test traffic and saturates its
    // cores — the "overdoing it" failure mode of Section III).
    let mut config = paper_config(mode, 1.3, seed);
    config.capacity_fraction = 0.75;
    let mut system = TStormSystem::new(cluster10(), config).expect("valid");

    // Sharing a 40-slot cluster: each topology requests 20 workers
    // (Throughput Test's paper default of 40 would consume every slot).
    let tp = ThroughputParams {
        workers: 20,
        ..ThroughputParams::paper()
    };
    let t_topo = throughput::topology(&tp).expect("valid");
    let mut t_factory = throughput::factory(&tp, seed);
    system.submit(&t_topo, &mut t_factory).expect("submits");

    let wp = WordCountParams::paper();
    let w_topo = wordcount::topology(&wp).expect("valid");
    let state = WordCountState::new();
    state.attach_corpus_producer(SimTime::ZERO, WORDCOUNT_LINES_PER_SEC);
    let mut w_factory = wordcount::factory(&state);
    system.submit(&w_topo, &mut w_factory).expect("submits");

    system.start().expect("starts");
    system
        .run_until(SimTime::from_secs(duration))
        .expect("runs");

    let report = system.report(match mode {
        SystemMode::StormDefault => "Storm (2 topologies)",
        SystemMode::TStorm => "T-Storm (2 topologies)",
    });
    let stable = SimTime::from_secs(duration / 2);
    println!(
        "{:<24} avg {:>8.3} ms | p99 {:>8.3} ms | nodes {:?} | failed {} | rollouts {}",
        report.label,
        report.mean_proc_time_after(stable).unwrap_or(f64::NAN),
        report.latency_quantile(0.99).unwrap_or(f64::NAN),
        report.final_nodes_used().unwrap_or(0),
        system.simulation().failed(),
        system.simulation().reassignments(),
    );
}

fn main() -> std::process::ExitCode {
    let args = match tstorm_bench::fig_args_or_exit("multi", 600, 42) {
        Ok(a) => a,
        Err(code) => return code,
    };
    let (duration, seed) = (args.duration_secs, args.seed);
    println!("Two concurrent topologies (Throughput Test + Word Count), {duration}s:\n");
    run(SystemMode::StormDefault, duration, seed);
    run(SystemMode::TStorm, duration, seed);
    std::process::ExitCode::SUCCESS
}
