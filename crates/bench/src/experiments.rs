//! Runners for every experiment in Section V of the paper.

use tstorm_cluster::{Assignment, ClusterSpec};
use tstorm_core::{SystemMode, TStormConfig, TStormSystem};
use tstorm_metrics::{ComparisonRow, RunReport};
use tstorm_sim::{FaultPlan, SimConfig, Simulation};
use tstorm_types::{Mhz, SimTime, SlotId};
use tstorm_workloads::chain::{self, ChainParams};
use tstorm_workloads::logstream::{self, LogStreamParams, LogStreamState};
use tstorm_workloads::throughput::{self, ThroughputParams};
use tstorm_workloads::wordcount::{self, WordCountParams, WordCountState};

/// The paper's per-experiment running time (Table II): 1000 s.
pub const PAPER_RUN_SECS: u64 = 1000;

/// Word Count input rate (lines/s): two readers paced at 5 ms sustain up
/// to 400 lines/s, so 300 keeps the topology busy without saturating the
/// source.
pub const WORDCOUNT_LINES_PER_SEC: f64 = 300.0;

/// Log Stream input rate (lines/s): five spouts sustain up to 1000.
pub const LOGSTREAM_LINES_PER_SEC: f64 = 800.0;

/// Everything one experiment run produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Human-readable label (`"Storm"`, `"T-Storm (gamma=1.7)"`, …).
    pub label: String,
    /// The metrics report (1-minute series, failures, node usage).
    pub report: RunReport,
    /// Overload detections that triggered the fast path.
    pub overload_events: u32,
    /// Supervisor re-assignment rollouts.
    pub reassignments: u32,
    /// Tuples that timed out.
    pub failed: u64,
    /// Fully-acked tuples.
    pub completed: u64,
}

impl ExperimentOutcome {
    fn from_system(label: impl Into<String>, system: &TStormSystem) -> Self {
        let label = label.into();
        Self {
            report: system.report(&label),
            overload_events: system.overload_events(),
            reassignments: system.simulation().reassignments(),
            failed: system.simulation().failed(),
            completed: system.simulation().completed(),
            label,
        }
    }

    fn from_sim(label: impl Into<String>, sim: &Simulation) -> Self {
        let label = label.into();
        Self {
            report: sim.report(&label),
            overload_events: 0,
            reassignments: sim.reassignments(),
            failed: sim.failed(),
            completed: sim.completed(),
            label,
        }
    }
}

/// The paper's testbed shape: 10 blade servers (dual 2.0 GHz Xeons ≈
/// 8000 MHz schedulable), 4 slots each, 1 Gbps network.
#[must_use]
pub fn cluster10() -> ClusterSpec {
    ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0)).expect("valid cluster")
}

/// Table II configuration for a given system/γ/seed.
#[must_use]
pub fn paper_config(mode: SystemMode, gamma: f64, seed: u64) -> TStormConfig {
    // Defaults already match Table II (α=0.5, monitor 20 s, fetch 10 s,
    // generation 300 s); only mode/γ/seed vary per experiment.
    TStormConfig::default()
        .with_mode(mode)
        .with_gamma(gamma)
        .with_seed(seed)
}

fn mode_label(mode: SystemMode, gamma: f64) -> String {
    match mode {
        SystemMode::StormDefault => "Storm".to_owned(),
        SystemMode::TStorm => format!("T-Storm (gamma={gamma})"),
    }
}

// ---------------------------------------------------------------------
// Fig. 2 — impact of inter-process and inter-node traffic
// ---------------------------------------------------------------------

/// Fig. 2: the chain topology under three manual placements —
/// `n1w1` (one node, one worker), `n5w5` (five nodes, one worker each),
/// `n5w10` (five nodes, two workers each). Returns one outcome per
/// placement, in that order.
#[must_use]
pub fn fig2(duration_secs: u64, seed: u64) -> Vec<ExperimentOutcome> {
    let params = ChainParams::fig2();
    let placements: [(&str, Vec<u32>); 3] = [
        ("n1w1", vec![0]),
        ("n5w5", vec![0, 2, 4, 6, 8]),
        ("n5w10", vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]),
    ];
    placements
        .into_iter()
        .map(|(label, slots)| {
            // Their testbed for this experiment: 5 blades.
            let cluster = ClusterSpec::homogeneous(5, 2, Mhz::new(8000.0)).expect("valid");
            let mut sim = Simulation::new(cluster, SimConfig::default().with_seed(seed));
            let topo = chain::topology(&params).expect("valid");
            let mut factory = chain::factory(&params, seed);
            sim.submit_topology(&topo, &mut factory);
            let assignment: Assignment = sim
                .executor_descriptors()
                .into_iter()
                .enumerate()
                .map(|(i, d)| (d.id, SlotId::new(slots[i % slots.len()])))
                .collect();
            sim.apply_assignment(&assignment);
            sim.run_until(SimTime::from_secs(duration_secs));
            ExperimentOutcome::from_sim(label, &sim)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 3 — impact of overloading a worker node
// ---------------------------------------------------------------------

/// Fig. 3: the chain topology with 5 spout executors and 1 executor per
/// bolt, all packed onto a single worker node — incoming tuples outpace
/// the bolt executors, queues grow, processing time skyrockets and
/// tuples start to fail.
#[must_use]
pub fn fig3(duration_secs: u64, seed: u64) -> ExperimentOutcome {
    let params = ChainParams {
        // Larger tuples than Fig. 2 push each single bolt executor's
        // service time past the tuple arrival interval even at full core
        // speed, so the backlog grows fast enough for queueing delay to
        // cross the 30 s timeout within the experiment, as in the paper.
        tuple_bytes: 48 * 1024,
        ..ChainParams::fig3_overload()
    };
    let cluster = ClusterSpec::homogeneous(1, 2, Mhz::new(8000.0)).expect("valid");
    let mut sim = Simulation::new(cluster, SimConfig::default().with_seed(seed));
    let topo = chain::topology(&params).expect("valid");
    let mut factory = chain::factory(&params, seed);
    sim.submit_topology(&topo, &mut factory);
    let assignment: Assignment = sim
        .executor_descriptors()
        .into_iter()
        .map(|d| (d.id, SlotId::new(0)))
        .collect();
    sim.apply_assignment(&assignment);
    sim.run_until(SimTime::from_secs(duration_secs));
    ExperimentOutcome::from_sim("overloaded n1w1", &sim)
}

// ---------------------------------------------------------------------
// Figs. 5, 6, 8 — the three applications, Storm vs T-Storm, γ sweeps
// ---------------------------------------------------------------------

/// The three full applications of Section V, runnable through one shared
/// entry point ([`run_app`]) by both the per-figure binaries and the
/// multi-seed sweep harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppWorkload {
    /// Fig. 5: Throughput Test (10 nodes, 40 workers, 45 executors).
    Throughput,
    /// Fig. 6: Word Count fed from the corpus queue (20 workers).
    WordCount,
    /// Fig. 8: Log Stream Processing fed IIS log lines (28 executors).
    LogStream,
}

impl AppWorkload {
    /// The stable lowercase name used in grid labels and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AppWorkload::Throughput => "throughput",
            AppWorkload::WordCount => "wordcount",
            AppWorkload::LogStream => "logstream",
        }
    }

    /// Parses the CLI/grid name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "throughput" => Some(AppWorkload::Throughput),
            "wordcount" => Some(AppWorkload::WordCount),
            "logstream" => Some(AppWorkload::LogStream),
            _ => None,
        }
    }
}

/// Runs one application end-to-end on the paper testbed under the given
/// system/γ/seed, with an optional deterministic fault plan — the shared
/// scenario runner behind [`fig5`], [`fig6`], [`fig8`] and the sweep
/// harness.
///
/// The system (and the simulator inside it) is constructed, driven and
/// dropped entirely within the calling thread; only the returned
/// [`ExperimentOutcome`] (plain owned data) crosses thread boundaries
/// in multi-threaded callers.
#[must_use]
pub fn run_app(
    workload: AppWorkload,
    mode: SystemMode,
    gamma: f64,
    duration_secs: u64,
    seed: u64,
    faults: &FaultPlan,
) -> ExperimentOutcome {
    let mut system =
        TStormSystem::new(cluster10(), paper_config(mode, gamma, seed)).expect("valid config");
    // Workload state handles must outlive the run.
    let _wc_state: Option<WordCountState>;
    let _ls_state: Option<LogStreamState>;
    match workload {
        AppWorkload::Throughput => {
            let params = ThroughputParams::paper();
            let topo = throughput::topology(&params).expect("valid");
            let mut factory = throughput::factory(&params, seed);
            system.submit(&topo, &mut factory).expect("submits");
        }
        AppWorkload::WordCount => {
            let params = WordCountParams::paper();
            let topo = wordcount::topology(&params).expect("valid");
            let state = WordCountState::new();
            state.attach_corpus_producer(SimTime::ZERO, WORDCOUNT_LINES_PER_SEC);
            let mut factory = wordcount::factory(&state);
            system.submit(&topo, &mut factory).expect("submits");
            _wc_state = Some(state);
        }
        AppWorkload::LogStream => {
            let params = LogStreamParams::paper();
            let topo = logstream::topology(&params).expect("valid");
            let state = LogStreamState::new();
            state.attach_log_producer(SimTime::ZERO, LOGSTREAM_LINES_PER_SEC, seed ^ 0xa5a5);
            let mut factory = logstream::factory(&state);
            system.submit(&topo, &mut factory).expect("submits");
            _ls_state = Some(state);
        }
    }
    system.start().expect("starts");
    if !faults.is_empty() {
        system
            .simulation_mut()
            .apply_fault_plan(faults)
            .expect("applies fault plan");
    }
    system
        .run_until(SimTime::from_secs(duration_secs))
        .expect("runs");
    ExperimentOutcome::from_system(mode_label(mode, gamma), &system)
}

/// Fig. 5: the Throughput Test topology (10 nodes, 40 workers, 45
/// executors) under the given system and consolidation factor.
#[must_use]
pub fn fig5(mode: SystemMode, gamma: f64, duration_secs: u64, seed: u64) -> ExperimentOutcome {
    run_app(
        AppWorkload::Throughput,
        mode,
        gamma,
        duration_secs,
        seed,
        &FaultPlan::new(),
    )
}

/// Fig. 6: the Word Count topology (10 nodes, 20 workers, 20 executors)
/// fed from the corpus queue.
#[must_use]
pub fn fig6(mode: SystemMode, gamma: f64, duration_secs: u64, seed: u64) -> ExperimentOutcome {
    run_app(
        AppWorkload::WordCount,
        mode,
        gamma,
        duration_secs,
        seed,
        &FaultPlan::new(),
    )
}

/// Fig. 8: the Log Stream Processing topology (10 nodes, 20 workers, 28
/// executors) fed LogStash-style IIS log lines.
#[must_use]
pub fn fig8(mode: SystemMode, gamma: f64, duration_secs: u64, seed: u64) -> ExperimentOutcome {
    run_app(
        AppWorkload::LogStream,
        mode,
        gamma,
        duration_secs,
        seed,
        &FaultPlan::new(),
    )
}

// ---------------------------------------------------------------------
// Figs. 9, 10 — overload detection and recovery
// ---------------------------------------------------------------------

/// Fig. 9: Word Count squeezed into one worker on one node, overloaded
/// with two concurrent corpus streams; T-Storm detects the overload and
/// re-schedules onto more nodes.
#[must_use]
pub fn fig9(duration_secs: u64, seed: u64) -> ExperimentOutcome {
    let params = WordCountParams::overload();
    let topo = wordcount::topology(&params).expect("valid");
    let state = WordCountState::new();
    // "We overloaded the topology by pushing two concurrent streams of
    // word files into the topology." Two 200 line/s streams saturate the
    // single node's cores (the readers cap out at 400 lines/s).
    state.attach_corpus_producer(SimTime::ZERO, 200.0);
    state.attach_corpus_producer(SimTime::ZERO, 200.0);
    let mut config = paper_config(SystemMode::TStorm, 2.0, seed);
    config.capacity_fraction = 0.8;
    let mut system = TStormSystem::new(cluster10(), config).expect("valid config");
    let mut factory = wordcount::factory(&state);
    system.submit(&topo, &mut factory).expect("submits");
    system.start().expect("starts");
    system
        .run_until(SimTime::from_secs(duration_secs))
        .expect("runs");
    ExperimentOutcome::from_system("T-Storm overload recovery (Word Count)", &system)
}

/// Fig. 10: Log Stream Processing squeezed into one worker on one node,
/// overloaded with two concurrent IIS log streams.
#[must_use]
pub fn fig10(duration_secs: u64, seed: u64) -> ExperimentOutcome {
    let params = LogStreamParams::overload();
    let topo = logstream::topology(&params).expect("valid");
    let state = LogStreamState::new();
    // "Feeding 2 streams of IIS log files into the same Redis queue."
    state.attach_log_producer(SimTime::ZERO, LOGSTREAM_LINES_PER_SEC / 2.0, seed ^ 0x11);
    state.attach_log_producer(SimTime::ZERO, LOGSTREAM_LINES_PER_SEC / 2.0, seed ^ 0x22);
    // γ = 1.4 caps nodes at ⌈1.4·28/10⌉ = 4 executors, spreading recovery
    // over ~8 nodes as in the paper's Fig. 10.
    let mut config = paper_config(SystemMode::TStorm, 1.4, seed);
    config.capacity_fraction = 0.8;
    let mut system = TStormSystem::new(cluster10(), config).expect("valid config");
    let mut factory = logstream::factory(&state);
    system.submit(&topo, &mut factory).expect("submits");
    system.start().expect("starts");
    system
        .run_until(SimTime::from_secs(duration_secs))
        .expect("runs");
    ExperimentOutcome::from_system("T-Storm overload recovery (Log Stream)", &system)
}

// ---------------------------------------------------------------------
// Tables and headline numbers
// ---------------------------------------------------------------------

/// Table II: the common experimental settings, rendered from the actual
/// configuration defaults (so drift between docs and code is impossible).
#[must_use]
pub fn table2() -> String {
    let c = TStormConfig::default();
    let cluster = cluster10();
    format!(
        "TABLE II: COMMON EXPERIMENTAL SETTINGS\n\
         {:<42} {}\n{:<42} {}\n{:<42} {}\n{:<42} {}\n{:<42} {}\n{:<42} {}\n",
        "Estimation coefficient (alpha)",
        c.alpha,
        "Load monitoring and estimation period",
        format_args!("{}s", c.monitor_period.as_secs()),
        "Number of available worker nodes",
        cluster.num_nodes(),
        "Running time of each experiment",
        format_args!("{PAPER_RUN_SECS}s"),
        "Schedule fetching period",
        format_args!("{}s", c.fetch_period.as_secs()),
        "Schedule generation period",
        format_args!("{}s", c.generation_period.as_secs()),
    )
}

/// The paper's headline comparison (Section V / abstract): Storm vs
/// T-Storm on all three topologies at the consolidating γ values,
/// counting windows after stabilisation.
#[must_use]
pub fn headline(duration_secs: u64, seed: u64) -> Vec<ComparisonRow> {
    let stable = SimTime::from_secs((duration_secs / 2).max(1));
    let mut rows = Vec::new();
    let storm = fig5(SystemMode::StormDefault, 1.0, duration_secs, seed);
    let tstorm = fig5(SystemMode::TStorm, 1.7, duration_secs, seed);
    rows.extend(ComparisonRow::from_reports(
        "Throughput Test (gamma=1.7)",
        &storm.report,
        &tstorm.report,
        stable,
    ));
    let storm = fig6(SystemMode::StormDefault, 1.0, duration_secs, seed);
    let tstorm = fig6(SystemMode::TStorm, 1.8, duration_secs, seed);
    rows.extend(ComparisonRow::from_reports(
        "Word Count (gamma=1.8)",
        &storm.report,
        &tstorm.report,
        stable,
    ));
    let storm = fig8(SystemMode::StormDefault, 1.0, duration_secs, seed);
    let tstorm = fig8(SystemMode::TStorm, 1.7, duration_secs, seed);
    rows.extend(ComparisonRow::from_reports(
        "Log Stream (gamma=1.7)",
        &storm.report,
        &tstorm.report,
        stable,
    ));
    rows
}

/// Renders one outcome in the shape used by all figure binaries: the
/// 1-minute series, a sparkline of it, and the summary line.
#[must_use]
pub fn render_outcome(outcome: &ExperimentOutcome) -> String {
    let mut out = outcome.report.render_table();
    let spark = tstorm_metrics::sparkline(&outcome.report.proc_points());
    if !spark.is_empty() {
        out.push_str(&format!("series: [{spark}]\n"));
    }
    if let (Some(p50), Some(p99)) = (
        outcome.report.latency_quantile(0.5),
        outcome.report.latency_quantile(0.99),
    ) {
        out.push_str(&format!("p50={p50:.3}ms p99={p99:.3}ms\n"));
    }
    out.push_str(&format!(
        "reassignments={} overload_events={} failed={} completed={}\n",
        outcome.reassignments, outcome.overload_events, outcome.failed, outcome.completed
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Short-duration smoke versions of each experiment; the full-length
    // reproductions live in the fig* binaries.

    #[test]
    fn fig2_ordering_holds() {
        let outcomes = fig2(120, 3);
        assert_eq!(outcomes.len(), 3);
        let mean = |o: &ExperimentOutcome| o.report.proc_time_ms.overall_mean().expect("has data");
        let (a, b, c) = (mean(&outcomes[0]), mean(&outcomes[1]), mean(&outcomes[2]));
        assert!(a < b, "n1w1 {a:.3} should beat n5w5 {b:.3}");
        assert!(b < c, "n5w5 {b:.3} should beat n5w10 {c:.3}");
    }

    #[test]
    fn fig3_overload_fails_tuples() {
        let outcome = fig3(150, 3);
        // Tuples fail in volume (Fig. 3b)...
        assert!(outcome.failed > 50, "failed {}", outcome.failed);
        // ...the few completions queue for multiple seconds (Fig. 3a)...
        let peak = outcome
            .report
            .proc_points()
            .iter()
            .filter(|p| p.count > 0)
            .map(|p| p.mean)
            .fold(0.0, f64::max);
        assert!(
            peak > 2_000.0,
            "peak latency {peak:.1} ms too low for overload"
        );
        // ...and most of the stream never completes at all.
        assert!(
            outcome.completed < outcome.report.emitted / 2,
            "completed {} of {} emitted",
            outcome.completed,
            outcome.report.emitted
        );
    }

    #[test]
    fn table2_renders_paper_values() {
        let t = table2();
        assert!(t.contains("0.5"));
        assert!(t.contains("20s"));
        assert!(t.contains("10"));
        assert!(t.contains("300s"));
        assert!(t.contains("1000s"));
    }
}
