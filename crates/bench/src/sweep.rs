//! `tstorm-sweep` — parallel multi-seed sweep harness with
//! deterministic aggregation.
//!
//! A [`SweepGrid`] expands a scenario grid — workload × system mode ×
//! γ × seed × optional fault plan — into independent [`TrialSpec`]s.
//! Trials run on an in-tree scoped thread pool ([`run_trials`]) and are
//! collected **by trial index, never by completion order**, so the
//! results (and the aggregate JSON rendered from them) are byte-
//! identical for `--threads 1` and `--threads N`.
//!
//! # Thread-confinement boundary
//!
//! `Simulation` and `TStormSystem` are `Send` (refcount-shared state
//! uses `Arc`/`Mutex`), so moving a system across threads compiles —
//! but this harness still confines each trial's system to its worker
//! thread by convention: [`run_trial`] constructs, drives and drops
//! the system inside one call, and only the plain-data [`TrialResult`]
//! crosses the thread boundary. Confinement keeps every trial's state
//! advance strictly serial (the determinism contract) and avoids any
//! cross-trial sharing; the `trial_results_are_send` test below
//! documents the result type's portability.
//!
//! # Seed derivation
//!
//! Per-trial seeds come from
//! [`derive_seed`]`(base_seed, cell_label, seed_ordinal)` — a pure
//! function of the grid coordinates, so a trial receives the same seed
//! no matter which thread runs it, in which order, or whether it is run
//! standalone outside any pool.

use crate::experiments::{run_app, AppWorkload, ExperimentOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tstorm_core::SystemMode;
use tstorm_metrics::aggregate::{aggregate_cells, AggregateError, ReportAggregate};
use tstorm_metrics::RunReport;
use tstorm_sim::FaultPlan;
use tstorm_trace::json::{write_escaped, write_f64, ObjectWriter};
use tstorm_types::{derive_seed, SimTime};

/// Everything a sweep can get wrong before any trial runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// Two grid cells expanded to the same label (e.g. the same γ listed
    /// twice): silently merging or shadowing them in the output table
    /// would corrupt the statistics, so expansion refuses.
    DuplicateLabel(String),
    /// The grid has no cells or no seeds.
    EmptyGrid(String),
    /// A `--fault` spec failed to parse.
    BadFaultSpec(String),
    /// Aggregation rejected the collected reports.
    Aggregate(AggregateError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::DuplicateLabel(l) => write!(
                f,
                "duplicate grid cell `{l}`: each workload/mode/gamma combination may appear once"
            ),
            SweepError::EmptyGrid(what) => write!(f, "empty grid: {what}"),
            SweepError::BadFaultSpec(e) => write!(f, "invalid fault spec: {e}"),
            SweepError::Aggregate(e) => write!(f, "aggregation failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<AggregateError> for SweepError {
    fn from(e: AggregateError) -> Self {
        SweepError::Aggregate(e)
    }
}

/// The sweep grid: the cross product of its axes, times `seeds` trials
/// per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Applications to run (Fig. 5 / 6 / 8 workloads).
    pub workloads: Vec<AppWorkload>,
    /// System modes (plain Storm, T-Storm).
    pub modes: Vec<SystemMode>,
    /// Consolidation factors γ.
    pub gammas: Vec<f64>,
    /// Trials per cell (seed ordinals `0..seeds`).
    pub seeds: u32,
    /// Base seed every per-trial seed is derived from.
    pub base_seed: u64,
    /// Virtual run length of each trial, in seconds.
    pub duration_secs: u64,
    /// Fault-plan specs applied identically to every trial (empty: none).
    pub faults: Vec<String>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            workloads: vec![AppWorkload::Throughput],
            modes: vec![SystemMode::StormDefault, SystemMode::TStorm],
            gammas: vec![1.0, 1.7],
            seeds: 3,
            base_seed: 42,
            duration_secs: 120,
            faults: Vec::new(),
        }
    }
}

/// The stable lowercase name of a mode, used in labels and CLI flags.
#[must_use]
pub fn mode_name(mode: SystemMode) -> &'static str {
    match mode {
        SystemMode::StormDefault => "storm",
        SystemMode::TStorm => "tstorm",
    }
}

/// Parses a mode name (`storm` / `tstorm`).
#[must_use]
pub fn mode_from_name(name: &str) -> Option<SystemMode> {
    match name {
        "storm" => Some(SystemMode::StormDefault),
        "tstorm" => Some(SystemMode::TStorm),
        _ => None,
    }
}

/// One independent trial: a single (workload, mode, γ, seed) scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialSpec {
    /// Position in the expanded grid; results are collected here.
    pub index: usize,
    /// Index of the owning cell in the cell list.
    pub cell: usize,
    /// The owning cell's label, e.g. `throughput/tstorm/g1.7`.
    pub cell_label: String,
    /// Application under test.
    pub workload: AppWorkload,
    /// System mode.
    pub mode: SystemMode,
    /// Consolidation factor γ.
    pub gamma: f64,
    /// Seed ordinal within the cell (`0..seeds`).
    pub seed_ordinal: u32,
    /// The derived per-trial seed (a pure function of the coordinates).
    pub seed: u64,
    /// Virtual run length in seconds.
    pub duration_secs: u64,
    /// Fault-plan specs applied to this trial.
    pub faults: Vec<String>,
}

/// The plain-data result of one trial — the only thing that crosses the
/// worker-thread boundary.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The trial's grid position (== its slot in the result vector).
    pub index: usize,
    /// Owning cell index.
    pub cell: usize,
    /// Owning cell label.
    pub cell_label: String,
    /// Seed ordinal within the cell.
    pub seed_ordinal: u32,
    /// The derived seed this trial ran with.
    pub seed: u64,
    /// Everything the run produced.
    pub outcome: ExperimentOutcome,
}

impl SweepGrid {
    /// The cell labels of the grid, in expansion order.
    fn cell_labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for w in &self.workloads {
            for m in &self.modes {
                for g in &self.gammas {
                    labels.push(format!("{}/{}/g{}", w.name(), mode_name(*m), g));
                }
            }
        }
        labels
    }

    /// Expands the grid into trials, validating it first: non-empty
    /// axes, parseable fault specs, and — the collision audit — unique
    /// cell labels.
    ///
    /// # Errors
    ///
    /// [`SweepError::EmptyGrid`], [`SweepError::BadFaultSpec`] or
    /// [`SweepError::DuplicateLabel`].
    pub fn expand(&self) -> Result<Vec<TrialSpec>, SweepError> {
        if self.workloads.is_empty() {
            return Err(SweepError::EmptyGrid("no workloads".to_owned()));
        }
        if self.modes.is_empty() {
            return Err(SweepError::EmptyGrid("no modes".to_owned()));
        }
        if self.gammas.is_empty() {
            return Err(SweepError::EmptyGrid("no gammas".to_owned()));
        }
        if self.seeds == 0 {
            return Err(SweepError::EmptyGrid("zero seeds per cell".to_owned()));
        }
        if self.duration_secs == 0 {
            return Err(SweepError::EmptyGrid("zero duration".to_owned()));
        }
        if let Err(e) = FaultPlan::from_specs(&self.faults) {
            return Err(SweepError::BadFaultSpec(e.to_string()));
        }
        let labels = self.cell_labels();
        for (i, label) in labels.iter().enumerate() {
            if labels[..i].contains(label) {
                return Err(SweepError::DuplicateLabel(label.clone()));
            }
        }
        let mut trials = Vec::new();
        let mut cell = 0usize;
        for w in &self.workloads {
            for m in &self.modes {
                for g in &self.gammas {
                    let cell_label = &labels[cell];
                    for ordinal in 0..self.seeds {
                        trials.push(TrialSpec {
                            index: trials.len(),
                            cell,
                            cell_label: cell_label.clone(),
                            workload: *w,
                            mode: *m,
                            gamma: *g,
                            seed_ordinal: ordinal,
                            seed: derive_seed(self.base_seed, cell_label, u64::from(ordinal)),
                            duration_secs: self.duration_secs,
                            faults: self.faults.clone(),
                        });
                    }
                    cell += 1;
                }
            }
        }
        Ok(trials)
    }

    /// The paper's "counting measurements after NNN s" boundary used by
    /// the aggregates: the stable second half of the run.
    #[must_use]
    pub fn stable_from(&self) -> SimTime {
        SimTime::from_secs((self.duration_secs / 2).max(1))
    }
}

/// Runs one trial in the calling thread. The `TStormSystem` lives and
/// dies inside this call (see the module docs on thread confinement);
/// the result is plain owned data.
#[must_use]
pub fn run_trial(spec: &TrialSpec) -> TrialResult {
    let faults = FaultPlan::from_specs(&spec.faults).expect("specs validated at expansion");
    let outcome = run_app(
        spec.workload,
        spec.mode,
        spec.gamma,
        spec.duration_secs,
        spec.seed,
        &faults,
    );
    TrialResult {
        index: spec.index,
        cell: spec.cell,
        cell_label: spec.cell_label.clone(),
        seed_ordinal: spec.seed_ordinal,
        seed: spec.seed,
        outcome,
    }
}

/// Runs every trial on a scoped pool of `threads` OS threads
/// (`std::thread` only), returning results **ordered by trial index**
/// regardless of completion order. `threads <= 1` runs inline on the
/// caller thread through the identical code path.
#[must_use]
pub fn run_trials(specs: &[TrialSpec], threads: usize) -> Vec<TrialResult> {
    let n = specs.len();
    if threads <= 1 || n <= 1 {
        // Same collect-by-index semantics, no pool.
        return specs.iter().map(run_trial).collect();
    }
    let results: Mutex<Vec<Option<TrialResult>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The system is constructed inside this worker thread
                // (see the module docs on thread confinement); only the
                // Send result leaves it.
                let result = run_trial(&specs[i]);
                let mut slots = results.lock().expect("no poisoned trial threads");
                debug_assert!(slots[i].is_none(), "trial {i} ran twice");
                slots[i] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned trial threads")
        .into_iter()
        .map(|r| r.expect("every trial index filled"))
        .collect()
}

/// A completed sweep: per-trial results (by trial index) and per-cell
/// aggregates (in grid order).
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// The grid that produced this sweep.
    pub grid: SweepGrid,
    /// One result per trial, `trials[i].index == i`.
    pub trials: Vec<TrialResult>,
    /// One aggregate per grid cell, in expansion order.
    pub aggregates: Vec<ReportAggregate>,
}

/// Expands, runs and aggregates a grid.
///
/// # Errors
///
/// Any [`SweepError`] from expansion or aggregation.
pub fn run_sweep(grid: &SweepGrid, threads: usize) -> Result<SweepResults, SweepError> {
    let specs = grid.expand()?;
    let trials = run_trials(&specs, threads);
    let aggregates = aggregate_trials(grid, &trials)?;
    Ok(SweepResults {
        grid: grid.clone(),
        trials,
        aggregates,
    })
}

/// Groups trial results into cells (by cell index, preserving seed
/// order) and aggregates each — rejecting duplicate cell labels.
///
/// # Errors
///
/// [`SweepError::Aggregate`] when a cell is empty or labels collide.
pub fn aggregate_trials(
    grid: &SweepGrid,
    trials: &[TrialResult],
) -> Result<Vec<ReportAggregate>, SweepError> {
    let n_cells = trials.iter().map(|t| t.cell + 1).max().unwrap_or(0);
    let mut cells: Vec<(String, Vec<&RunReport>)> = Vec::new();
    for c in 0..n_cells {
        let members: Vec<&TrialResult> = trials.iter().filter(|t| t.cell == c).collect();
        let label = members
            .first()
            .map_or_else(|| format!("cell-{c}"), |t| t.cell_label.clone());
        cells.push((label, members.iter().map(|t| &t.outcome.report).collect()));
    }
    Ok(aggregate_cells(&cells, grid.stable_from())?)
}

// ---------------------------------------------------------------------
// Deterministic JSON rendering
// ---------------------------------------------------------------------

/// Renders one [`RunReport`] as deterministic JSON — the per-trial
/// byte-identity contract: the same scenario must render byte-identical
/// whether it ran standalone, on the main thread, or through the pool.
#[must_use]
pub fn report_json(report: &RunReport) -> String {
    let mut points = String::from("[");
    for (i, p) in report.proc_points().iter().enumerate() {
        if i > 0 {
            points.push(',');
        }
        let mut o = ObjectWriter::new();
        o.u64("t", p.start.as_secs());
        o.f64("mean", if p.count == 0 { f64::NAN } else { p.mean });
        o.u64("count", p.count);
        points.push_str(&o.finish());
    }
    points.push(']');

    let mut nodes = String::from("[");
    for (i, (t, n)) in report.nodes_used.steps().iter().enumerate() {
        if i > 0 {
            nodes.push(',');
        }
        nodes.push_str(&format!("[{},{}]", t.as_secs(), n));
    }
    nodes.push(']');

    let mut recoveries = String::from("[");
    for (i, ms) in report.recovery_latency_ms.iter().enumerate() {
        if i > 0 {
            recoveries.push(',');
        }
        write_f64(&mut recoveries, *ms);
    }
    recoveries.push(']');

    let mut o = ObjectWriter::new();
    o.str("label", &report.label)
        .u64("completed", report.completed)
        .u64("emitted", report.emitted)
        .u64("failed", report.failed.total())
        .u64("replays", report.replays)
        .u64("perm_failed", report.perm_failed)
        .u64("tuples_lost", report.tuples_lost)
        .u64("invalid_latency_samples", report.invalid_latency_samples())
        .f64("p50_ms", report.latency_quantile(0.5).unwrap_or(f64::NAN))
        .f64("p99_ms", report.latency_quantile(0.99).unwrap_or(f64::NAN))
        .raw("proc_points", &points)
        .raw("nodes_used", &nodes)
        .raw("recovery_latency_ms", &recoveries);
    o.finish()
}

fn stats_json(agg: &ReportAggregate) -> String {
    let mut out = String::from("{");
    let mut any = false;
    for (name, stats) in &agg.metrics {
        if any {
            out.push(',');
        }
        any = true;
        write_escaped(&mut out, name);
        out.push(':');
        match stats {
            None => out.push_str("null"),
            Some(s) => {
                let mut o = ObjectWriter::new();
                o.u64("n", s.n as u64)
                    .f64("mean", s.mean)
                    .f64("stddev", s.stddev)
                    .f64("min", s.min)
                    .f64("max", s.max)
                    .f64("ci95", s.ci95);
                out.push_str(&o.finish());
            }
        }
    }
    out.push('}');
    out
}

/// Renders the whole sweep as the `SWEEP_*.json` artifact.
///
/// The output is a pure function of the grid and the per-trial reports:
/// it carries no thread count, wall-clock time or hostnames, which is
/// what makes the `--threads 1` vs `--threads N` byte-identity test
/// possible.
#[must_use]
pub fn render_sweep_json(results: &SweepResults) -> String {
    let grid = &results.grid;
    let list = |items: Vec<String>| -> String {
        let mut out = String::from("[");
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(item);
        }
        out.push(']');
        out
    };
    let str_list = |names: Vec<&str>| -> String {
        let mut out = String::from("[");
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, name);
        }
        out.push(']');
        out
    };

    let cells = list(
        results
            .aggregates
            .iter()
            .map(|a| {
                let mut o = ObjectWriter::new();
                o.str("label", &a.label)
                    .u64("trials", a.trials as u64)
                    .raw("metrics", &stats_json(a));
                o.finish()
            })
            .collect(),
    );
    let trials = list(
        results
            .trials
            .iter()
            .map(|t| {
                let mut o = ObjectWriter::new();
                o.u64("index", t.index as u64)
                    .str("cell", &t.cell_label)
                    .u64("seed_ordinal", u64::from(t.seed_ordinal))
                    .u64("seed", t.seed)
                    .u64("overload_events", u64::from(t.outcome.overload_events))
                    .u64("reassignments", u64::from(t.outcome.reassignments))
                    .raw("report", &report_json(&t.outcome.report));
                o.finish()
            })
            .collect(),
    );

    let mut gammas = String::from("[");
    for (i, g) in grid.gammas.iter().enumerate() {
        if i > 0 {
            gammas.push(',');
        }
        write_f64(&mut gammas, *g);
    }
    gammas.push(']');

    let mut o = ObjectWriter::new();
    o.str("tool", "tstorm-sweep")
        .u64("schema_version", 1)
        .str("workspace_version", env!("CARGO_PKG_VERSION"))
        // The fixed Section V cluster every trial runs on.
        .str("cluster", "homogeneous 10 nodes x 4 slots @ 8000 MHz")
        .raw(
            "workloads",
            &str_list(grid.workloads.iter().map(|w| w.name()).collect()),
        )
        .raw(
            "modes",
            &str_list(grid.modes.iter().map(|m| mode_name(*m)).collect()),
        )
        .raw("gammas", &gammas)
        .u64("seeds_per_cell", u64::from(grid.seeds))
        .u64("base_seed", grid.base_seed)
        .u64("duration_secs", grid.duration_secs)
        .u64("stable_from_secs", grid.stable_from().as_secs())
        .raw(
            "faults",
            &str_list(grid.faults.iter().map(String::as_str).collect()),
        )
        .raw("cells", &cells)
        .raw("trials", &trials);
    let mut out = o.finish();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid {
            workloads: vec![AppWorkload::Throughput],
            modes: vec![SystemMode::StormDefault, SystemMode::TStorm],
            gammas: vec![1.0, 1.7],
            seeds: 2,
            base_seed: 42,
            duration_secs: 30,
            faults: Vec::new(),
        }
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let grid = small_grid();
        let a = grid.expand().expect("expands");
        let b = grid.expand().expect("expands");
        assert_eq!(a, b);
        assert_eq!(a.len(), 8); // 1 workload x 2 modes x 2 gammas x 2 seeds
        for (i, spec) in a.iter().enumerate() {
            assert_eq!(spec.index, i);
        }
        // Seeds are derived per (cell, ordinal), decorrelated across both.
        assert_ne!(a[0].seed, a[1].seed);
        assert_ne!(a[0].seed, a[2].seed);
        // ... and independent of expansion order (pure function).
        assert_eq!(
            a[5].seed,
            derive_seed(42, &a[5].cell_label, u64::from(a[5].seed_ordinal))
        );
    }

    #[test]
    fn duplicate_gamma_is_rejected_at_grid_build_time() {
        let grid = SweepGrid {
            gammas: vec![1.7, 1.7],
            ..small_grid()
        };
        match grid.expand() {
            Err(SweepError::DuplicateLabel(l)) => assert!(l.contains("g1.7"), "label {l}"),
            other => panic!("expected DuplicateLabel, got {other:?}"),
        }
    }

    #[test]
    fn empty_axes_and_bad_faults_are_rejected() {
        assert!(matches!(
            SweepGrid {
                workloads: vec![],
                ..small_grid()
            }
            .expand(),
            Err(SweepError::EmptyGrid(_))
        ));
        assert!(matches!(
            SweepGrid {
                seeds: 0,
                ..small_grid()
            }
            .expand(),
            Err(SweepError::EmptyGrid(_))
        ));
        assert!(matches!(
            SweepGrid {
                faults: vec!["bogus@spec".to_owned()],
                ..small_grid()
            }
            .expand(),
            Err(SweepError::BadFaultSpec(_))
        ));
    }

    #[test]
    fn trial_results_are_send() {
        // The thread-confinement contract: results cross threads;
        // systems stay inside their worker thread by convention (they
        // are Send since the frame-parallel refactor, so the compiler
        // no longer enforces it).
        fn assert_send<T: Send>() {}
        assert_send::<TrialResult>();
        assert_send::<TrialSpec>();
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [SystemMode::StormDefault, SystemMode::TStorm] {
            assert_eq!(mode_from_name(mode_name(m)), Some(m));
        }
        assert_eq!(mode_from_name("nope"), None);
        for w in [
            AppWorkload::Throughput,
            AppWorkload::WordCount,
            AppWorkload::LogStream,
        ] {
            assert_eq!(AppWorkload::from_name(w.name()), Some(w));
        }
    }

    #[test]
    fn report_json_is_valid_and_carries_schema() {
        let mut r = RunReport::new("x");
        r.record_latency(SimTime::from_secs(10), 1.5);
        r.completed = 1;
        r.emitted = 2;
        r.nodes_used.record(SimTime::ZERO, 4);
        let text = report_json(&r);
        let v = tstorm_trace::json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("label").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("completed").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("proc_points").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.get("nodes_used").unwrap().as_array().unwrap().len(), 1);
    }
}
