//! Strict command-line parsing shared by every figure binary.
//!
//! The original binaries parsed positionals with
//! `.and_then(|s| s.parse().ok()).unwrap_or(default)`, so a typo like
//! `fig5 100O` silently ran the 1000 s default instead of erroring —
//! an entire paper-scale run wasted on a malformed invocation. The
//! parser here exits non-zero with a usage message on anything it does
//! not understand.

use std::process::ExitCode;

// One strict `--workers` parser for every binary: the CLI owns it
// (bench depends on cli, not the other way around) and the bench
// binaries re-export it so `tstorm` and `simbench` reject exactly the
// same inputs with the same messages.
pub use tstorm_cli::args::parse_workers;

/// The `[duration_secs] [seed]` positionals every figure binary takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigArgs {
    /// Virtual run length in seconds.
    pub duration_secs: u64,
    /// Base RNG seed.
    pub seed: u64,
}

/// Outcome of strict parsing, before process-exit policy is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// Arguments were well-formed.
    Ok(FigArgs),
    /// `--help`/`-h` was requested: print usage, exit zero.
    Help,
    /// Malformed input: print the message, exit non-zero.
    Error(String),
}

/// Usage text for a binary taking the standard positionals.
#[must_use]
pub fn usage(bin: &str, default_duration: u64, default_seed: u64) -> String {
    format!(
        "usage: {bin} [duration_secs] [seed]\n\
         \n\
           duration_secs  virtual run length in seconds (default: {default_duration})\n\
           seed           base RNG seed (default: {default_seed})\n\
         \n\
         Malformed values are rejected rather than silently replaced by\n\
         their defaults."
    )
}

/// Parses the standard `[duration_secs] [seed]` positionals strictly:
/// a value that does not parse as `u64`, or any extra argument, is an
/// error — never silently replaced by the default.
pub fn parse_fig_args<I>(args: I, default_duration: u64, default_seed: u64) -> Parsed
where
    I: IntoIterator<Item = String>,
{
    let mut values = [default_duration, default_seed];
    const NAMES: [&str; 2] = ["duration_secs", "seed"];
    for (slot, arg) in args.into_iter().enumerate() {
        if arg == "--help" || arg == "-h" {
            return Parsed::Help;
        }
        if arg.starts_with('-') && arg.parse::<u64>().is_err() {
            return Parsed::Error(format!("unknown flag `{arg}`"));
        }
        if slot >= values.len() {
            return Parsed::Error(format!("unexpected extra argument `{arg}`"));
        }
        match arg.parse::<u64>() {
            Ok(v) => values[slot] = v,
            Err(_) => {
                return Parsed::Error(format!(
                    "invalid {} `{arg}`: expected an unsigned integer",
                    NAMES[slot]
                ))
            }
        }
    }
    Parsed::Ok(FigArgs {
        duration_secs: values[0],
        seed: values[1],
    })
}

/// Entry-point helper: parses `std::env::args()` strictly and either
/// returns the parsed values or the exit code the binary must return
/// (0 for `--help`, 2 for malformed input, with usage on stderr).
pub fn fig_args_or_exit(
    bin: &str,
    default_duration: u64,
    default_seed: u64,
) -> Result<FigArgs, ExitCode> {
    match parse_fig_args(std::env::args().skip(1), default_duration, default_seed) {
        Parsed::Ok(v) => Ok(v),
        Parsed::Help => {
            println!("{}", usage(bin, default_duration, default_seed));
            Err(ExitCode::SUCCESS)
        }
        Parsed::Error(msg) => {
            eprintln!("{bin}: {msg}");
            eprintln!("{}", usage(bin, default_duration, default_seed));
            Err(ExitCode::from(2))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        parse_fig_args(args.iter().map(|s| (*s).to_owned()), 1000, 42)
    }

    #[test]
    fn defaults_apply_with_no_args() {
        assert_eq!(
            parse(&[]),
            Parsed::Ok(FigArgs {
                duration_secs: 1000,
                seed: 42
            })
        );
    }

    #[test]
    fn positionals_override_defaults() {
        assert_eq!(
            parse(&["120", "7"]),
            Parsed::Ok(FigArgs {
                duration_secs: 120,
                seed: 7
            })
        );
        assert_eq!(
            parse(&["120"]),
            Parsed::Ok(FigArgs {
                duration_secs: 120,
                seed: 42
            })
        );
    }

    #[test]
    fn typo_is_an_error_not_the_default() {
        // The motivating bug: `fig5 100O` (letter O) used to run 1000 s.
        let Parsed::Error(msg) = parse(&["100O"]) else {
            panic!("`100O` must be rejected");
        };
        assert!(msg.contains("100O"), "message names the bad value: {msg}");
        assert!(matches!(parse(&["120", "4x"]), Parsed::Error(_)));
        assert!(matches!(parse(&["-5"]), Parsed::Error(_)));
    }

    #[test]
    fn extra_arguments_are_rejected() {
        assert!(matches!(parse(&["120", "7", "9"]), Parsed::Error(_)));
    }

    #[test]
    fn unknown_flags_are_rejected_and_help_is_honoured() {
        assert!(matches!(parse(&["--frobnicate"]), Parsed::Error(_)));
        assert_eq!(parse(&["--help"]), Parsed::Help);
        assert_eq!(parse(&["-h"]), Parsed::Help);
    }

    #[test]
    fn workers_parser_is_shared_with_the_cli() {
        assert_eq!(parse_workers("4"), Ok(4));
        assert!(parse_workers("0").is_err());
        assert!(parse_workers("1O").is_err(), "typo must not become 10");
    }

    #[test]
    fn usage_names_the_binary_and_defaults() {
        let u = usage("fig5", 1000, 42);
        assert!(u.contains("fig5"));
        assert!(u.contains("1000"));
        assert!(u.contains("42"));
    }
}
