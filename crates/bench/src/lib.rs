//! Experiment harness reproducing Section V of the T-Storm paper.
//!
//! Every table and figure of the evaluation has a runner here and a
//! binary under `src/bin/` that prints the corresponding series/rows
//! (see DESIGN.md's per-experiment index):
//!
//! | Experiment | Runner | Binary |
//! |---|---|---|
//! | Fig. 2 (traffic impact) | [`experiments::fig2`] | `fig2` |
//! | Fig. 3 (overload impact) | [`experiments::fig3`] | `fig3` |
//! | Fig. 5 (Throughput Test) | [`experiments::fig5`] | `fig5` |
//! | Fig. 6 (Word Count) | [`experiments::fig6`] | `fig6` |
//! | Fig. 8 (Log Stream) | [`experiments::fig8`] | `fig8` |
//! | Fig. 9 (overload recovery, WC) | [`experiments::fig9`] | `fig9` |
//! | Fig. 10 (overload recovery, LS) | [`experiments::fig10`] | `fig10` |
//! | Table II (settings) | [`experiments::table2`] | `tables` |
//! | §V headline numbers | [`experiments::headline`] | `summary` |
//! | Scheduler baselines (§III/§VI) | — | `baselines` |
//! | Multi-topology scheduling (§IV-C's "M topologies") | — | `multi` |
//!
//! Criterion benches (`benches/`) cover Algorithm 1's `O(Ne log Ne +
//! Ne·Ns)` scaling, scheduler-vs-scheduler runtime, and shortened
//! versions of the figure experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod experiments;
pub mod sweep;

pub use args::{fig_args_or_exit, FigArgs};
pub use experiments::{ExperimentOutcome, PAPER_RUN_SECS};
