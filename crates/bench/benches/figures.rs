//! Criterion bench: shortened versions of every figure experiment.
//!
//! Each bench runs the same code path as the corresponding `fig*` binary
//! at sharply reduced virtual duration, so `cargo bench` regenerates (a
//! fast version of) every figure and tracks simulator throughput
//! regressions. Durations are chosen so one iteration stays around a
//! second; full-length reproductions live in the binaries
//! (`cargo run --release -p tstorm-bench --bin fig5` etc.).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tstorm_bench::experiments;
use tstorm_core::SystemMode;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig2_traffic_impact_30s", |b| {
        b.iter(|| black_box(experiments::fig2(30, 42)));
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig3_overload_25s", |b| {
        b.iter(|| black_box(experiments::fig3(25, 42)));
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig5_throughput_storm_45s", |b| {
        b.iter(|| black_box(experiments::fig5(SystemMode::StormDefault, 1.0, 45, 42)));
    });
    group.bench_function("fig5_throughput_tstorm_45s", |b| {
        b.iter(|| black_box(experiments::fig5(SystemMode::TStorm, 1.7, 45, 42)));
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig6_wordcount_storm_45s", |b| {
        b.iter(|| black_box(experiments::fig6(SystemMode::StormDefault, 1.0, 45, 42)));
    });
    group.bench_function("fig6_wordcount_tstorm_45s", |b| {
        b.iter(|| black_box(experiments::fig6(SystemMode::TStorm, 1.8, 45, 42)));
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig8_logstream_storm_45s", |b| {
        b.iter(|| black_box(experiments::fig8(SystemMode::StormDefault, 1.0, 45, 42)));
    });
    group.bench_function("fig8_logstream_tstorm_45s", |b| {
        b.iter(|| black_box(experiments::fig8(SystemMode::TStorm, 1.7, 45, 42)));
    });
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig9_overload_recovery_wc_90s", |b| {
        b.iter(|| black_box(experiments::fig9(90, 42)));
    });
    group.bench_function("fig10_overload_recovery_ls_90s", |b| {
        b.iter(|| black_box(experiments::fig10(90, 42)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig3,
    bench_fig5,
    bench_fig6,
    bench_fig8,
    bench_fig9_fig10
);
criterion_main!(benches);
