//! Criterion bench: scheduling-algorithm runtime head-to-head on a
//! paper-sized problem (the Throughput Test's 45 executors over the
//! 10-node / 40-slot testbed, with realistic shuffle-diffuse traffic).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tstorm_cluster::ClusterSpec;
use tstorm_sched::{
    AnielloOfflineScheduler, AnielloOnlineScheduler, ExecutorInfo, LocalSearchScheduler,
    RoundRobinScheduler, SchedParams, Scheduler, SchedulingInput, TStormScheduler, TrafficMatrix,
};
use tstorm_types::{ComponentId, ExecutorId, Mhz, TopologyId};

/// Throughput-Test-shaped input: 5 spouts -> 15 identities -> 15
/// counters -> 10 ackers, with diffuse shuffle traffic between stages.
fn throughput_like_input() -> SchedulingInput {
    let cluster = ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0)).expect("valid");
    let stage = |base: u32, count: u32| -> Vec<ExecutorId> {
        (0..count).map(|i| ExecutorId::new(base + i)).collect()
    };
    let spouts = stage(0, 5);
    let identities = stage(5, 15);
    let counters = stage(20, 15);
    let ackers = stage(35, 10);

    let mut executors = Vec::new();
    for (comp, ids) in [
        (0u32, &spouts),
        (1, &identities),
        (2, &counters),
        (3, &ackers),
    ] {
        for id in ids {
            executors.push(ExecutorInfo::new(
                *id,
                TopologyId::new(0),
                ComponentId::new(comp),
                Mhz::new(50.0),
            ));
        }
    }

    let mut traffic = TrafficMatrix::new();
    let connect =
        |traffic: &mut TrafficMatrix, from: &[ExecutorId], to: &[ExecutorId], total: f64| {
            let per = total / (from.len() * to.len()) as f64;
            for f in from {
                for t in to {
                    traffic.set(*f, *t, per);
                }
            }
        };
    connect(&mut traffic, &spouts, &identities, 1000.0);
    connect(&mut traffic, &identities, &counters, 1000.0);
    connect(&mut traffic, &spouts, &ackers, 1000.0);
    connect(&mut traffic, &identities, &ackers, 1000.0);
    connect(&mut traffic, &counters, &ackers, 1000.0);

    SchedulingInput::new(
        cluster,
        executors,
        traffic,
        SchedParams::default()
            .with_gamma(1.7)
            .with_workers(TopologyId::new(0), 40),
    )
    .with_component_edges(vec![
        (TopologyId::new(0), ComponentId::new(0), ComponentId::new(1)),
        (TopologyId::new(0), ComponentId::new(1), ComponentId::new(2)),
    ])
}

fn bench_schedulers(c: &mut Criterion) {
    let input = throughput_like_input();
    let mut group = c.benchmark_group("schedulers/throughput_45x40");

    group.bench_function("t-storm", |b| {
        let mut s = TStormScheduler::new();
        b.iter(|| black_box(s.schedule(black_box(&input)).expect("feasible")));
    });
    group.bench_function("storm-default", |b| {
        let mut s = RoundRobinScheduler::storm_default();
        b.iter(|| black_box(s.schedule(black_box(&input)).expect("feasible")));
    });
    group.bench_function("t-storm-initial", |b| {
        let mut s = RoundRobinScheduler::tstorm_initial();
        b.iter(|| black_box(s.schedule(black_box(&input)).expect("feasible")));
    });
    group.bench_function("aniello-online", |b| {
        let mut s = AnielloOnlineScheduler::new();
        b.iter(|| black_box(s.schedule(black_box(&input)).expect("feasible")));
    });
    group.bench_function("aniello-offline", |b| {
        let mut s = AnielloOfflineScheduler::new();
        b.iter(|| black_box(s.schedule(black_box(&input)).expect("feasible")));
    });
    group.bench_function("t-storm-ls", |b| {
        let mut s = LocalSearchScheduler::new();
        b.iter(|| black_box(s.schedule(black_box(&input)).expect("feasible")));
    });
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
