//! Criterion bench: Algorithm 1's runtime scaling.
//!
//! The paper claims `O(Ne log Ne + Ne·Ns)` (Section IV-C). This bench
//! sweeps executor count `Ne` (with chain-shaped traffic) and slot count
//! `Ns` so the reported times can be checked against that shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tstorm_cluster::ClusterSpec;
use tstorm_sched::{
    ExecutorInfo, SchedParams, Scheduler, SchedulingInput, TStormScheduler, TrafficMatrix,
};
use tstorm_types::{ComponentId, ExecutorId, Mhz, TopologyId};

/// A chain of `ne` executors over `nodes`×`slots_per_node` slots.
fn chain_input(ne: u32, nodes: u32, slots_per_node: u32) -> SchedulingInput {
    let cluster = ClusterSpec::homogeneous(nodes, slots_per_node, Mhz::new(8000.0)).expect("valid");
    let executors: Vec<ExecutorInfo> = (0..ne)
        .map(|i| {
            ExecutorInfo::new(
                ExecutorId::new(i),
                TopologyId::new(0),
                ComponentId::new(i % 8),
                Mhz::new(20.0),
            )
        })
        .collect();
    let mut traffic = TrafficMatrix::new();
    for i in 0..ne.saturating_sub(1) {
        traffic.set(
            ExecutorId::new(i),
            ExecutorId::new(i + 1),
            100.0 + f64::from(i),
        );
    }
    SchedulingInput::new(
        cluster,
        executors,
        traffic,
        SchedParams::default().with_gamma(2.0),
    )
}

/// Reduces roughly 5% of the executor loads so a repeated solve is a
/// load-only delta — the shape the incremental replay is built for.
fn perturb_loads(input: &mut SchedulingInput, seed: u64) {
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    for e in &mut input.executors {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        if (state >> 33) as f64 / (1u64 << 31) as f64 * 2.0 < 0.05 {
            *e = ExecutorInfo::new(e.id, e.topology, e.component, Mhz::new(e.load.get() * 0.9));
        }
    }
}

// The small sizes run on the Fig. 2 cluster shape (10×4); the large
// ones use the scale-100 shape (100×4) so the 10k point is feasible.
const NE_SWEEP: [(u32, u32); 7] = [
    (45, 10),
    (90, 10),
    (180, 10),
    (360, 10),
    (720, 10),
    (5_000, 100),
    (10_000, 100),
];

fn bench_ne_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/ne_scaling");
    for (ne, nodes) in NE_SWEEP {
        let input = chain_input(ne, nodes, 4);
        group.bench_with_input(BenchmarkId::from_parameter(ne), &input, |b, input| {
            let mut sched = TStormScheduler::new();
            sched.set_incremental(false);
            b.iter(|| black_box(sched.schedule(black_box(input)).expect("feasible")));
        });
    }
    group.finish();
}

fn bench_ns_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/ns_scaling");
    for nodes in [10u32, 20, 40, 80] {
        let input = chain_input(200, nodes, 4);
        let ns = nodes * 4;
        group.bench_with_input(BenchmarkId::from_parameter(ns), &input, |b, input| {
            let mut sched = TStormScheduler::new();
            sched.set_incremental(false);
            b.iter(|| black_box(sched.schedule(black_box(input)).expect("feasible")));
        });
    }
    group.finish();
}

/// Full solve vs incremental replay on load-only perturbations. The
/// `alg1bench` binary prints the same comparison with std timers for
/// environments where criterion is stubbed out.
fn bench_incremental_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/incremental");
    for (ne, nodes) in [(720u32, 10u32), (5_000, 100), (10_000, 100)] {
        let mut input = chain_input(ne, nodes, 4);
        let mut sched = TStormScheduler::new();
        sched.schedule(&input).expect("feasible");
        let mut seed = 0u64;
        group.bench_function(&format!("replay/{ne}"), |b| {
            b.iter(|| {
                seed += 1;
                perturb_loads(&mut input, seed);
                black_box(sched.schedule(black_box(&input)).expect("feasible"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ne_scaling,
    bench_ns_scaling,
    bench_incremental_replay
);
criterion_main!(benches);
