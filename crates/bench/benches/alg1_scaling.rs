//! Criterion bench: Algorithm 1's runtime scaling.
//!
//! The paper claims `O(Ne log Ne + Ne·Ns)` (Section IV-C). This bench
//! sweeps executor count `Ne` (with chain-shaped traffic) and slot count
//! `Ns` so the reported times can be checked against that shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tstorm_cluster::ClusterSpec;
use tstorm_sched::{
    ExecutorInfo, SchedParams, Scheduler, SchedulingInput, TStormScheduler, TrafficMatrix,
};
use tstorm_types::{ComponentId, ExecutorId, Mhz, TopologyId};

/// A chain of `ne` executors over `nodes`×`slots_per_node` slots.
fn chain_input(ne: u32, nodes: u32, slots_per_node: u32) -> SchedulingInput {
    let cluster = ClusterSpec::homogeneous(nodes, slots_per_node, Mhz::new(8000.0)).expect("valid");
    let executors: Vec<ExecutorInfo> = (0..ne)
        .map(|i| {
            ExecutorInfo::new(
                ExecutorId::new(i),
                TopologyId::new(0),
                ComponentId::new(i % 8),
                Mhz::new(20.0),
            )
        })
        .collect();
    let mut traffic = TrafficMatrix::new();
    for i in 0..ne.saturating_sub(1) {
        traffic.set(
            ExecutorId::new(i),
            ExecutorId::new(i + 1),
            100.0 + f64::from(i),
        );
    }
    SchedulingInput::new(
        cluster,
        executors,
        traffic,
        SchedParams::default().with_gamma(2.0),
    )
}

fn bench_ne_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/ne_scaling");
    for ne in [45u32, 90, 180, 360, 720] {
        let input = chain_input(ne, 10, 4);
        group.bench_with_input(BenchmarkId::from_parameter(ne), &input, |b, input| {
            let mut sched = TStormScheduler::new();
            b.iter(|| black_box(sched.schedule(black_box(input)).expect("feasible")));
        });
    }
    group.finish();
}

fn bench_ns_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1/ns_scaling");
    for nodes in [10u32, 20, 40, 80] {
        let input = chain_input(200, nodes, 4);
        let ns = nodes * 4;
        group.bench_with_input(BenchmarkId::from_parameter(ns), &input, |b, input| {
            let mut sched = TStormScheduler::new();
            b.iter(|| black_box(sched.schedule(black_box(input)).expect("feasible")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ne_scaling, bench_ns_scaling);
criterion_main!(benches);
