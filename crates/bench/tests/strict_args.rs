//! End-to-end regression tests for strict argument parsing: malformed
//! input must exit non-zero with a diagnostic, never silently fall back
//! to defaults (the old `fig5 100O` → 1000 s bug).

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin)
        .args(args)
        .output()
        .expect("binary launches")
}

#[test]
fn malformed_duration_exits_nonzero_and_names_the_value() {
    // The motivating bug: a letter O typo used to run the default
    // duration instead of erroring.
    let out = run(env!("CARGO_BIN_EXE_fig5"), &["100O"]);
    assert_eq!(out.status.code(), Some(2), "exit code for `fig5 100O`");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("100O"),
        "stderr names the bad value: {stderr}"
    );
    assert!(stderr.contains("usage:"), "stderr shows usage: {stderr}");
}

#[test]
fn malformed_seed_and_extra_args_exit_nonzero() {
    let out = run(env!("CARGO_BIN_EXE_fig2"), &["10", "4x"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(env!("CARGO_BIN_EXE_fig3"), &["10", "7", "9"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(env!("CARGO_BIN_EXE_summary"), &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_exits_zero_with_usage() {
    for bin in [
        env!("CARGO_BIN_EXE_fig5"),
        env!("CARGO_BIN_EXE_baselines"),
        env!("CARGO_BIN_EXE_tables"),
        env!("CARGO_BIN_EXE_sweep"),
    ] {
        let out = run(bin, &["--help"]);
        assert_eq!(out.status.code(), Some(0), "{bin} --help");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("usage"), "{bin} --help prints usage");
    }
}

#[test]
fn tables_rejects_any_argument() {
    let out = run(env!("CARGO_BIN_EXE_tables"), &["extra"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sweep_rejects_malformed_grid_flags() {
    let cases: &[&[&str]] = &[
        &["--seeds", "3O"],
        &["--gammas", "1.0,potato"],
        &["--modes", "storm,fast"],
        &["--workloads", "throughput,nope"],
        &["--threads", "0"],
        &["--duration"],
        &["--bogus"],
        &["--gammas", "1.7,1.7"], // duplicate cell labels
    ];
    for args in cases {
        let out = run(env!("CARGO_BIN_EXE_sweep"), args);
        assert_eq!(out.status.code(), Some(2), "sweep {args:?}");
        assert!(!out.stderr.is_empty(), "sweep {args:?} explains itself");
    }
}
