//! Cross-thread determinism contract of the sweep harness.
//!
//! A trial's result must be byte-identical (as rendered JSON) whether
//! the trial runs on the main thread, on a freshly spawned thread, or
//! through the worker pool at any `--threads` value — and pool results
//! must land at their trial index regardless of completion order.

use tstorm_bench::experiments::{run_app, AppWorkload};
use tstorm_bench::sweep::{
    render_sweep_json, report_json, run_sweep, run_trial, run_trials, SweepGrid, TrialSpec,
};
use tstorm_core::SystemMode;
use tstorm_sim::FaultPlan;
use tstorm_types::derive_seed;

const DURATION: u64 = 20;

fn small_grid() -> SweepGrid {
    SweepGrid {
        workloads: vec![AppWorkload::Throughput],
        modes: vec![SystemMode::StormDefault, SystemMode::TStorm],
        gammas: vec![1.7],
        seeds: 2,
        base_seed: 42,
        duration_secs: DURATION,
        faults: Vec::new(),
    }
}

#[test]
fn main_thread_spawned_thread_and_pool_agree_byte_for_byte() {
    let grid = small_grid();
    let specs = grid.expand().expect("expands");
    let spec = specs[1].clone();

    // Main thread.
    let on_main = report_json(&run_trial(&spec).outcome.report);

    // A spawned thread: the system is constructed inside it and only
    // the plain-data result crosses back.
    let spec_clone = spec.clone();
    let on_spawned =
        std::thread::spawn(move || report_json(&run_trial(&spec_clone).outcome.report))
            .join()
            .expect("trial thread");

    // The pool.
    let pooled = run_trials(&specs, 3);
    let on_pool = report_json(&pooled[spec.index].outcome.report);

    assert_eq!(on_main, on_spawned, "main vs spawned thread");
    assert_eq!(on_main, on_pool, "main thread vs pool");
}

#[test]
fn pooled_trial_matches_standalone_run() {
    // A trial run through the pool must equal the same scenario run
    // directly through `run_app` with the same derived seed — the
    // harness adds orchestration, never behaviour.
    let grid = small_grid();
    let specs = grid.expand().expect("expands");
    let spec = &specs[2];

    let standalone = run_app(
        spec.workload,
        spec.mode,
        spec.gamma,
        spec.duration_secs,
        spec.seed,
        &FaultPlan::new(),
    );
    let pooled = run_trials(&specs, 2);
    assert_eq!(
        report_json(&standalone.report),
        report_json(&pooled[spec.index].outcome.report),
    );
}

#[test]
fn sweep_json_is_byte_identical_across_thread_counts() {
    let grid = small_grid();
    let serial = render_sweep_json(&run_sweep(&grid, 1).expect("serial sweep"));
    let pooled = render_sweep_json(&run_sweep(&grid, 4).expect("pooled sweep"));
    assert_eq!(serial, pooled);
    // And re-running is reproducible, not merely internally consistent.
    let again = render_sweep_json(&run_sweep(&grid, 4).expect("pooled sweep"));
    assert_eq!(serial, again);
}

#[test]
fn pool_collects_by_trial_index_despite_unequal_durations() {
    // Hand-built specs with deliberately unequal work: the long trial
    // is first, so with 2+ workers later short trials *finish* first.
    // Results must still land at their trial index.
    let durations = [40u64, 5, 5, 5];
    let specs: Vec<TrialSpec> = durations
        .iter()
        .enumerate()
        .map(|(i, &d)| TrialSpec {
            index: i,
            cell: i,
            cell_label: format!("cell-{i}"),
            workload: AppWorkload::Throughput,
            mode: SystemMode::TStorm,
            gamma: 1.7,
            seed_ordinal: 0,
            seed: derive_seed(42, &format!("cell-{i}"), 0),
            duration_secs: d,
            faults: Vec::new(),
        })
        .collect();

    let results = run_trials(&specs, 3);
    assert_eq!(results.len(), specs.len());
    for (i, result) in results.iter().enumerate() {
        assert_eq!(
            result.index, i,
            "result slot {i} holds trial {}",
            result.index
        );
        assert_eq!(result.seed, specs[i].seed);
        // The long trial sees strictly more simulated time than the
        // short ones — confirms each slot holds its own trial's data.
        assert_eq!(result.cell_label, format!("cell-{i}"));
    }
    assert!(
        results[0].outcome.report.emitted > results[1].outcome.report.emitted,
        "40s trial emits more than 5s trial"
    );
}

#[test]
fn derived_seeds_match_standalone_derivation() {
    // Seeds are a pure function of (base, cell label, ordinal): anyone
    // can reproduce a single trial outside the harness.
    let grid = small_grid();
    let specs = grid.expand().expect("expands");
    for spec in &specs {
        assert_eq!(
            spec.seed,
            derive_seed(
                grid.base_seed,
                &spec.cell_label,
                u64::from(spec.seed_ordinal)
            )
        );
    }
}
