//! Word Count (stream version) with a consolidation-factor sweep, plus
//! end-to-end verification against the corpus ground truth.
//!
//! Reproduces the shape of Fig. 6: γ ∈ {1.0, 1.8, 2.2} trades worker
//! nodes for (a little) latency.
//!
//! ```text
//! cargo run --release --example word_count
//! ```

use tstorm::cluster::ClusterSpec;
use tstorm::core::{SystemMode, TStormConfig, TStormSystem};
use tstorm::substrates::CorpusReader;
use tstorm::types::{Mhz, SimTime};
use tstorm::workloads::wordcount::{self, WordCountParams, WordCountState};

fn run(
    mode: SystemMode,
    gamma: f64,
) -> Result<(TStormSystem, WordCountState), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0))?;
    let mut config = TStormConfig::default().with_mode(mode).with_gamma(gamma);
    config.generation_period = SimTime::from_secs(60);
    let mut system = TStormSystem::new(cluster, config)?;

    let params = WordCountParams::paper();
    let state = WordCountState::new();
    // The paper pushes the Alice text into a Redis queue; 2 readers at
    // 5 ms pacing sustain up to 400 lines/s, so feed 300 lines/s.
    state.attach_corpus_producer(SimTime::ZERO, 300.0);
    let topology = wordcount::topology(&params)?;
    let mut factory = wordcount::factory(&state);
    system.submit(&topology, &mut factory)?;
    system.start()?;
    system.run_until(SimTime::from_secs(300))?;
    Ok((system, state))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stable = SimTime::from_secs(120);
    let (storm, _) = run(SystemMode::StormDefault, 1.0)?;
    let storm_ms = storm
        .report("Storm")
        .mean_proc_time_after(stable)
        .unwrap_or(f64::NAN);
    println!("Storm default: {storm_ms:.2} ms avg proc time, 10 nodes\n");

    println!(
        "{:>6} {:>12} {:>8} {:>10}",
        "gamma", "avg ms", "nodes", "speedup%"
    );
    for gamma in [1.0, 1.8, 2.2] {
        let (system, state) = run(SystemMode::TStorm, gamma)?;
        let report = system.report("T-Storm");
        let ms = report.mean_proc_time_after(stable).unwrap_or(f64::NAN);
        let nodes = report.nodes_used.last().copied().unwrap_or(0);
        let speedup = (storm_ms - ms) / storm_ms * 100.0;
        println!("{gamma:>6.1} {ms:>12.2} {nodes:>8} {speedup:>10.1}");

        // Verify results against ground truth: stored counts never exceed
        // the exact count of the lines consumed so far.
        let store = state.store.lock().unwrap();
        let popped = state.queue.lock().unwrap().popped();
        let truth = CorpusReader::alice().expected_word_counts(popped);
        let stored: u64 = store
            .find_by("words", "word", "the")
            .and_then(|d| d.get("count"))
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        assert!(stored > 0 && stored <= truth["the"], "verification failed");
    }
    println!("\nMongo verification passed: word counts match the corpus ground truth.");
    Ok(())
}
