//! Quickstart: run the paper's Throughput Test under plain Storm and
//! under T-Storm on the same 10-node cluster, and print the comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tstorm::cluster::ClusterSpec;
use tstorm::core::{SystemMode, TStormConfig, TStormSystem};
use tstorm::metrics::ComparisonRow;
use tstorm::types::{Mhz, SimTime};
use tstorm::workloads::throughput::{self, ThroughputParams};

fn run(mode: SystemMode, gamma: f64) -> Result<TStormSystem, Box<dyn std::error::Error>> {
    // The paper's testbed shape: 10 worker nodes on a 1 Gbps network.
    let cluster = ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0))?;
    let mut config = TStormConfig::default().with_mode(mode).with_gamma(gamma);
    // Shortened control periods so the example finishes quickly; the
    // benchmark binaries use the paper's Table II values.
    config.generation_period = SimTime::from_secs(60);
    let mut system = TStormSystem::new(cluster, config)?;

    let params = ThroughputParams::paper();
    let topology = throughput::topology(&params)?;
    let mut factory = throughput::factory(&params, 7);
    system.submit(&topology, &mut factory)?;
    system.start()?;
    system.run_until(SimTime::from_secs(300))?;
    Ok(system)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Throughput Test on 10 nodes: Storm default vs T-Storm (gamma=1)\n");

    let storm = run(SystemMode::StormDefault, 1.0)?;
    let tstorm = run(SystemMode::TStorm, 1.0)?;

    let storm_report = storm.report("Storm");
    let tstorm_report = tstorm.report("T-Storm");
    println!("{}", storm_report.render_table());
    println!("{}", tstorm_report.render_table());

    let stable = SimTime::from_secs(120);
    if let Some(row) =
        ComparisonRow::from_reports("throughput gamma=1", &storm_report, &tstorm_report, stable)
    {
        println!("{}", ComparisonRow::render_table(&[row]));
    }
    println!(
        "T-Storm rescheduled {} time(s); smooth rollout dropped {} tuples.",
        tstorm.simulation().reassignments(),
        tstorm.simulation().dropped_in_flight(),
    );
    Ok(())
}
