//! Plugging a user-defined scheduling algorithm into T-Storm's hot-swap
//! registry — the "algorithm development" workflow Section IV-C
//! advertises: "the developer of a scheduling algorithm can focus on
//! developing his/her algorithm without knowing all the details about
//! Nimbus, scheduler and supervisors".
//!
//! The example implements a naive `pack-first` scheduler (cram
//! everything into as few slots as capacity allows, ignoring traffic and
//! the consolidation cap), registers it under a name, runs under it,
//! then hot-swaps to Algorithm 1 mid-run — no restarts, no tuple loss.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use tstorm::cluster::{Assignment, ClusterSpec};
use tstorm::core::{SystemMode, TStormConfig, TStormSystem};
use tstorm::sched::{Scheduler, SchedulingInput};
use tstorm::types::{Mhz, Result, SimTime, SlotId, TStormError};
use tstorm::workloads::throughput::{self, ThroughputParams};

/// Greedily packs executors into the fewest feasible slots, one topology
/// per slot, respecting capacity — but blind to traffic.
struct PackFirstScheduler;

impl Scheduler for PackFirstScheduler {
    fn name(&self) -> &'static str {
        "pack-first"
    }

    fn schedule(&mut self, input: &SchedulingInput) -> Result<Assignment> {
        let mut assignment = Assignment::new();
        let mut slot_topo: Vec<Option<tstorm::types::TopologyId>> =
            vec![None; input.cluster.num_slots()];
        let mut node_load = vec![Mhz::ZERO; input.cluster.num_nodes()];
        for e in &input.executors {
            let mut placed = false;
            for slot in input.cluster.slots() {
                let j = slot.slot.as_usize();
                let k = slot.node.as_usize();
                let compatible = slot_topo[j].is_none_or(|t| t == e.topology);
                // One slot per topology per node: if the topology already
                // has a slot on this node, it must be this one.
                let node_slot_of_topo = input
                    .cluster
                    .slots_of(slot.node)
                    .find(|s| slot_topo[s.slot.as_usize()] == Some(e.topology))
                    .map(|s| s.slot);
                let respects_one_slot = node_slot_of_topo.is_none_or(|s| s == slot.slot);
                let fits = node_load[k] + e.load
                    <= input.cluster.node(slot.node).capacity * input.params.capacity_fraction;
                if compatible && respects_one_slot && fits {
                    slot_topo[j] = Some(e.topology);
                    node_load[k] += e.load;
                    assignment.assign(e.id, SlotId::new(j as u32));
                    placed = true;
                    break;
                }
            }
            if !placed {
                return Err(TStormError::infeasible(
                    self.name(),
                    format!("no feasible slot for {}", e.id),
                ));
            }
        }
        Ok(assignment)
    }
}

fn main() -> Result<()> {
    let cluster = ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0))?;
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::TStorm)
        .with_gamma(2.0)
        .with_scheduler("pack-first"); // our algorithm, by name
    config.generation_period = SimTime::from_secs(60);

    let system = TStormSystem::new(cluster, config.clone());
    // "pack-first" is not registered yet — creating the system fails,
    // demonstrating that names resolve through the registry…
    assert!(system.is_err());

    // …so register it first (in a real deployment this is the "load new
    // code into the schedule generator" step).
    let mut config2 = config;
    config2.scheduler = "t-storm".into();
    let mut system =
        TStormSystem::new(ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0))?, config2)?;
    system.register_scheduler("pack-first", || Box::new(PackFirstScheduler));
    system.swap_scheduler("pack-first")?;
    assert_eq!(system.scheduler_name(), "pack-first");

    let params = ThroughputParams::paper();
    let topology = throughput::topology(&params)?;
    system.submit(&topology, &mut throughput::factory(&params, 7))?;
    system.start()?;
    system.run_until(SimTime::from_secs(240))?;
    let packed = system
        .report("pack-first")
        .mean_proc_time_after(SimTime::from_secs(120))
        .unwrap_or(f64::NAN);
    println!(
        "pack-first (user-defined):   {packed:.3} ms avg, {:?} node(s)",
        system.report("x").nodes_used.last()
    );
    // On this lightly loaded topology, extreme packing performs well —
    // Observation 1 in action. Its danger is having no capacity or
    // consolidation guard: under load it overloads a node, which
    // Algorithm 1's constraints prevent.

    // Hot-swap to Algorithm 1; the generator keeps running, nothing
    // restarts, and the publish hysteresis only rolls out a new schedule
    // if it is actually better.
    system.swap_scheduler("t-storm")?;
    system.run_until(SimTime::from_secs(600))?;
    let tstorm = system
        .report("t-storm")
        .mean_proc_time_after(SimTime::from_secs(420))
        .unwrap_or(f64::NAN);
    println!("after hot-swap to t-storm:   {tstorm:.3} ms avg");
    println!(
        "schedules generated: {}, rollouts: {}, tuple loss: {}",
        system.generations(),
        system.simulation().reassignments(),
        system.simulation().dropped_in_flight()
    );
    Ok(())
}
