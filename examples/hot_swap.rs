//! Hot-swapping schedulers and adjusting γ on the fly (Section IV-C's
//! "Hot-Swapping of Scheduling Algorithms").
//!
//! The run starts under the Aniello online baseline, swaps to T-Storm's
//! Algorithm 1 mid-run without restarting anything, then raises γ to
//! consolidate nodes — all while tuples keep flowing.
//!
//! ```text
//! cargo run --release --example hot_swap
//! ```

use tstorm::cluster::ClusterSpec;
use tstorm::core::{SystemMode, TStormConfig, TStormSystem};
use tstorm::types::{Mhz, SimTime};
use tstorm::workloads::throughput::{self, ThroughputParams};

fn status(system: &TStormSystem, label: &str) {
    let report = system.report("x");
    println!(
        "{label:<28} t={:>4}s scheduler={:<16} gamma={:<4} nodes={:?} completed={}",
        system.simulation().now().as_secs(),
        system.scheduler_name(),
        system.gamma(),
        report.nodes_used.last(),
        system.simulation().completed(),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0))?;
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::TStorm)
        .with_scheduler("aniello-online")
        .with_gamma(1.0);
    config.generation_period = SimTime::from_secs(60);
    let mut system = TStormSystem::new(cluster, config)?;

    let params = ThroughputParams::paper();
    let topology = throughput::topology(&params)?;
    let mut factory = throughput::factory(&params, 7);
    system.submit(&topology, &mut factory)?;
    system.start()?;
    status(&system, "started (aniello-online)");

    system.run_until(SimTime::from_secs(150))?;
    status(&system, "after 150s");

    // Swap the algorithm at runtime — nothing restarts, nothing stops.
    system.swap_scheduler("t-storm")?;
    status(&system, "swapped to t-storm");
    system.run_until(SimTime::from_secs(300))?;
    status(&system, "after 300s");

    // Adjust the consolidation factor on the fly.
    system.set_gamma(6.0)?;
    status(&system, "gamma raised to 6");
    system.run_until(SimTime::from_secs(480))?;
    status(&system, "after 480s");

    let nodes = system.report("x").nodes_used.last().copied().unwrap_or(0);
    println!(
        "\nFinal: {} nodes in use, {} schedules generated, {} tuples failed.",
        nodes,
        system.generations(),
        system.simulation().failed()
    );
    Ok(())
}
