//! Log Stream Processing with overload injection and recovery — the
//! Fig. 10 scenario: the topology starts on a single worker/node, two
//! concurrent IIS log streams overload it, T-Storm detects the overload
//! and reschedules onto more nodes.
//!
//! ```text
//! cargo run --release --example log_stream
//! ```

use tstorm::cluster::ClusterSpec;
use tstorm::core::{SystemMode, TStormConfig, TStormSystem};
use tstorm::types::{Mhz, SimTime};
use tstorm::workloads::logstream::{self, LogStreamParams, LogStreamState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::homogeneous(10, 4, Mhz::new(8000.0))?;
    let mut config = TStormConfig::default()
        .with_mode(SystemMode::TStorm)
        .with_gamma(1.5);
    config.capacity_fraction = 0.8;
    let mut system = TStormSystem::new(cluster, config)?;

    // Start with everything in one worker on one node (paper: "we
    // initially set the topology to only use one worker on one node").
    let params = LogStreamParams::overload();
    let state = LogStreamState::new();
    // Two concurrent LogStash streams into the same Redis queue.
    state.attach_log_producer(SimTime::ZERO, 400.0, 11);
    state.attach_log_producer(SimTime::ZERO, 400.0, 13);

    let topology = logstream::topology(&params)?;
    let mut factory = logstream::factory(&state);
    system.submit(&topology, &mut factory)?;
    system.start()?;

    println!("time(s)  nodes  overloads  avg-proc(ms, window)  failed");
    let mut last_failed = 0;
    for t in (60..=600).step_by(60) {
        system.run_until(SimTime::from_secs(t))?;
        let report = system.report("log-stream");
        let window = report
            .proc_points()
            .iter()
            .rev()
            .find(|p| p.count > 0)
            .map_or(f64::NAN, |p| p.mean);
        let failed = report.failed.total();
        println!(
            "{:>6}  {:>5}  {:>9}  {:>20.2}  {:>6}",
            t,
            report.nodes_used.last().copied().unwrap_or(0),
            system.overload_events(),
            window,
            failed - last_failed,
        );
        last_failed = failed;
    }

    let report = system.report("log-stream");
    let nodes = report.nodes_used.last().copied().unwrap_or(0);
    println!(
        "\nOverload detected {} time(s); final deployment uses {} nodes.",
        system.overload_events(),
        nodes
    );
    let store = state.store.lock().unwrap();
    println!(
        "Mongo verification: {} indexed URIs, {} status classes.",
        store.count("index"),
        store.count("counts")
    );
    Ok(())
}
